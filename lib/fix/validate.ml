module Core = Snorlax_core
module Hb = Analysis.Hb
module Pool = Snorlax_util.Pool

(* The semantic referee for synthesized patches.  Synthesis only promises
   the patched module still verifies; this module decides whether the bug
   is actually gone, on three kinds of evidence:

   - the original failing seed, replayed under the same traced harness
     [Runner.collect] reproduced it with, must no longer fail;
   - a sweep of seeds, run with the HB oracle attached on both the
     pristine and the patched module, must show no failure the baseline
     did not already show, no new hang, and no new racy pair;
   - the diagnosed pattern's own claims must be dead: its instruction
     pairs no longer racy, and (for deadlocks) no crossed lock windows
     left unguarded by a common gate.

   Anything the baseline itself exhibits (the bug's failure signature,
   its racy pairs) can only ever demote a patch to [Not_fixed]; only
   behaviour the baseline never showed makes a patch [Regressed]. *)

type verdict = Fixed | Not_fixed of string | Regressed of string

let verdict_name = function
  | Fixed -> "fixed"
  | Not_fixed _ -> "not-fixed"
  | Regressed _ -> "regressed"

let verdict_reason = function
  | Fixed -> ""
  | Not_fixed r | Regressed r -> r

type judgement = {
  verdict : verdict;
  replay_ok : bool;  (** failing seed completed under the patch *)
  runs : int;  (** simulated executions this judgement performed *)
  notes : string list;
}

type attempt = {
  template : Patch.template;
  outcome : (judgement, string) result;  (** [Error] = synthesis refused *)
}

type bug_report = {
  bug_id : string;
  bug_kind : string;
  pattern : string option;  (** [Patterns.id] of the diagnosis top scorer *)
  verdict : verdict;
  template : Patch.template option;  (** the winning (or last tried) template *)
  patch : string option;  (** winning patch description *)
  attempts : attempt list;
  replay_ok : bool;
  sweep_seeds : int;
  runs : int;
  secs : float;
  notes : string list;
}

(* --- observed executions -------------------------------------------------- *)

type observed = {
  out : (Sim.Interp.run_result, string) result;
      (** [Error] captures host-level exceptions (e.g. unlocking an unheld
          mutex) that a broken patch can provoke *)
  engine : Hb.t;
}

let plain_run m ~entry ~seed =
  let engine = Hb.create () in
  let config =
    { Sim.Interp.default_config with seed; hooks = Oracle.Observe.hooks engine }
  in
  let out =
    try Ok (Sim.Interp.run ~config m ~entry) with Failure msg -> Error msg
  in
  { out; engine }

let traced_run built ~entry ~seed =
  try
    Ok
      (Corpus.Runner.run_traced ~built ~entry ~seed ~pt_config:Pt.Config.default
         ~watch_pcs:[] ())
        .Corpus.Runner.result
  with Failure msg -> Error msg

(* A failure's identity across the pristine/patched builds: class label
   plus anchor iid.  Patches never renumber original instructions, so
   matching signatures really is the same failure. *)
let signature f =
  let r = Core.Report.of_sim_failure f ~time_ns:0. ~traces:[] in
  (Core.Report.kind_label r, Core.Report.failing_anchor_iid r)

let norm (a, b) = if a <= b then (a, b) else (b, a)

let race_pairs engine =
  List.map (fun (r : Hb.race) -> norm (r.Hb.a_iid, r.Hb.b_iid)) (Hb.races engine)

let claimed_pairs (p : Core.Patterns.t) =
  match p with
  | Core.Patterns.Order { remote_iid; anchor_iid; _ } ->
    [ (remote_iid, anchor_iid) ]
  | Core.Patterns.Atomicity { local_iid; remote_iid; anchor_iid; _ } ->
    [ (local_iid, remote_iid); (remote_iid, anchor_iid) ]
  | Core.Patterns.Deadlock_cycle _ -> []

(* Crossed hold-while-acquiring facts from two threads with no common
   gate: thread [t1] held [la] wanting [lb] while [t2] held [lb] wanting
   [la], and no lock was held by both threads across those attempts.  A
   gate-serialized patch leaves the crossed facts in place but guards
   them, so guarded crossings are fine; an unguarded one means the cycle
   can still close. *)
let unguarded_two_cycle edges =
  let guarded t1 lb t2 la =
    List.exists
      (fun (t, g, _, w, _) ->
        t = t1 && w = lb
        && List.exists
             (fun (t', g', _, w', _) -> t' = t2 && w' = la && g' = g)
             edges)
      edges
  in
  List.exists
    (fun (t1, la, _, lb, _) ->
      List.exists
        (fun (t2, lc, _, ld, _) ->
          t1 <> t2 && lc = lb && ld = la && not (guarded t1 lb t2 la))
        edges)
    edges

(* --- baseline ------------------------------------------------------------- *)

type baseline = {
  sigs : (string * int) list;
      (** failure signatures: collected failing reports + sweep failures *)
  races : (int * int) list;  (** racy pairs seen in any baseline run *)
  hangs : bool;  (** some baseline run got stuck / ran out of fuel *)
  runs : int;
}

let report_signature (r : Core.Report.failing_report) =
  (Core.Report.kind_label r, Core.Report.failing_anchor_iid r)

let baseline_of ~(collected : Corpus.Runner.collected) ~entry ~seeds =
  let m = collected.Corpus.Runner.built.Corpus.Bug.m in
  let sigs = ref (List.map report_signature collected.Corpus.Runner.failing) in
  let races = ref [] in
  let hangs = ref false in
  let completed = ref 0 in
  let runs = ref 0 in
  let observe seed =
    incr runs;
    let o = plain_run m ~entry ~seed in
    (match o.out with
    | Ok { Sim.Interp.outcome = Sim.Interp.Failed { failure; _ }; _ } ->
      sigs := signature failure :: !sigs
    | Ok { Sim.Interp.outcome = Sim.Interp.Stuck | Sim.Interp.Fuel_exhausted; _ }
      ->
      hangs := true
    | Ok { Sim.Interp.outcome = Sim.Interp.Completed; _ } -> incr completed
    | Error _ -> ());
    races := race_pairs o.engine @ !races
  in
  List.iter observe seeds;
  (* The patched program will mostly COMPLETE, so the baseline must
     contain at least one completed pristine execution — otherwise
     benign races in post-failure code (a done-flag handshake, a stats
     counter) would read as patch-introduced.  The collection phase
     already knows seeds that succeeded under tracing; sample those, then
     probe fresh seeds as a last resort. *)
  let extra =
    List.filteri (fun i _ -> i < 5) collected.Corpus.Runner.success_seeds
    @ List.init 40 (fun i -> 223_000 + (911 * i))
  in
  let rec ensure_completed = function
    | [] -> ()
    | s :: rest ->
      if !completed = 0 then begin
        observe s;
        ensure_completed rest
      end
  in
  ensure_completed (List.filter (fun s -> not (List.mem s seeds)) extra);
  {
    sigs = List.sort_uniq compare !sigs;
    races = List.sort_uniq compare !races;
    hangs = !hangs;
    runs = !runs;
  }

(* --- judging one patched module ------------------------------------------- *)

let judge_patch ~(bug : Corpus.Bug.t) ~(collected : Corpus.Runner.collected)
    ~(pattern : Core.Patterns.t) ?baseline ~sweep_seeds m_patched =
  let entry = bug.Corpus.Bug.entry in
  let runs = ref 0 in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let base =
    match baseline with
    | Some b -> b
    | None ->
      let b = baseline_of ~collected ~entry ~seeds:sweep_seeds in
      runs := !runs + b.runs;
      b
  in
  let finish verdict replay_ok =
    { verdict; replay_ok; runs = !runs; notes = List.rev !notes }
  in
  (* 1. The original failing interleaving, under the traced harness the
     failure was collected with (tracing has virtual-time cost, so only
     the same harness re-takes the same schedule). *)
  let f0 =
    match collected.Corpus.Runner.failing_seeds with
    | s :: _ -> s
    | [] -> invalid_arg "Validate.judge_patch: no failing seed"
  in
  let patched_built =
    { collected.Corpus.Runner.built with Corpus.Bug.m = m_patched }
  in
  incr runs;
  match traced_run patched_built ~entry ~seed:f0 with
  | Error msg -> finish (Regressed ("failing-seed replay raised: " ^ msg)) false
  | Ok { Sim.Interp.outcome = Sim.Interp.Failed { failure; _ }; _ } ->
    let s = signature failure in
    if List.mem s base.sigs then begin
      note "failing seed %d still fails (%s @%d)" f0 (fst s) (snd s);
      finish (Not_fixed "failure reproduces on the failing seed") false
    end
    else begin
      note "failing seed %d now fails differently (%s @%d)" f0 (fst s) (snd s);
      finish (Regressed "new failure on the failing seed") false
    end
  | Ok { Sim.Interp.outcome = Sim.Interp.Stuck | Sim.Interp.Fuel_exhausted; _ }
    ->
    finish (Regressed "failing seed hangs under the patch") false
  | Ok { Sim.Interp.outcome = Sim.Interp.Completed; _ } ->
    note "failing seed %d completes under the patch" f0;
    (* 2. The oracle sweep: pristine-vs-patched differential at every
       sweep seed, plus the pattern's own claims. *)
    let verdict = ref None in
    let worst v =
      (* A regression beats a not-fixed beats nothing; first reason kept. *)
      match (!verdict, v) with
      | None, v -> verdict := Some v
      | Some (Not_fixed _), Regressed _ -> verdict := Some v
      | Some _, _ -> ()
    in
    let pairs = claimed_pairs pattern in
    List.iter
      (fun seed ->
        let o = plain_run m_patched ~entry ~seed in
        (match o.out with
        | Error msg ->
          note "seed %d raised: %s" seed msg;
          worst (Regressed "patched run raised a host failure")
        | Ok { Sim.Interp.outcome = Sim.Interp.Failed { failure; _ }; _ } ->
          let s = signature failure in
          if List.mem s base.sigs then begin
            note "seed %d: failure reproduces (%s @%d)" seed (fst s) (snd s);
            worst (Not_fixed "failure reproduces in the sweep")
          end
          else begin
            note "seed %d: new failure %s @%d" seed (fst s) (snd s);
            worst (Regressed "new failure in the sweep")
          end
        | Ok
            {
              Sim.Interp.outcome =
                Sim.Interp.Stuck | Sim.Interp.Fuel_exhausted;
              _;
            } ->
          if not base.hangs then begin
            note "seed %d: hang" seed;
            worst (Regressed "patched run hangs")
          end
        | Ok { Sim.Interp.outcome = Sim.Interp.Completed; _ } -> ());
        incr runs;
        let fresh =
          List.filter
            (fun p -> not (List.mem p base.races))
            (race_pairs o.engine)
        in
        if fresh <> [] then begin
          let a, b = List.hd fresh in
          note "seed %d: new racy pair (%d, %d)" seed a b;
          worst (Regressed "patch introduced a racy pair")
        end;
        List.iter
          (fun (a, b) ->
            match Hb.pair_verdict o.engine a b with
            | Hb.Conflict { ordering = Hb.Racy; _ } ->
              note "seed %d: claimed pair (%d, %d) still racy" seed a b;
              worst (Not_fixed "diagnosed pair still racy")
            | Hb.Conflict { ordering = Hb.Lock_ordered | Hb.Enforced; _ }
            | Hb.No_conflict ->
              ())
          pairs;
        match pattern with
        | Core.Patterns.Deadlock_cycle _ ->
          if unguarded_two_cycle (Hb.lock_edges o.engine) then begin
            note "seed %d: crossed lock windows remain unguarded" seed;
            worst (Not_fixed "lock cycle still possible")
          end
        | Core.Patterns.Order _ | Core.Patterns.Atomicity _ -> ())
      sweep_seeds;
    finish (match !verdict with None -> Fixed | Some v -> v) true

(* --- the per-bug ladder --------------------------------------------------- *)

let default_sweep_seeds = 10

(* Sweep seeds live far from the collection range so the oracle judges
   interleavings the diagnosis never saw; the failing seed itself is
   swept too (under the plain harness it is just one more seed). *)
let sweep_seed_list ~collected ~seeds =
  let f0 =
    match collected.Corpus.Runner.failing_seeds with s :: _ -> s | [] -> 1
  in
  f0 :: List.init seeds (fun i -> 100_000 + (211 * i))

let fix_bug ?jobs ?cache ?(seeds = default_sweep_seeds) (bug : Corpus.Bug.t) =
  let t0 = Obs.Span.wall_clock_ns () in
  match Corpus.Runner.collect bug () with
  | Error e -> Error e
  | Ok c ->
    let res =
      Core.Diagnosis.diagnose ?jobs ?cache c.Corpus.Runner.built.Corpus.Bug.m
        ~config:Pt.Config.default ~failing:c.Corpus.Runner.failing
        ~successful:c.Corpus.Runner.successful
    in
    let runs = ref c.Corpus.Runner.runs_needed in
    let finish ~pattern ~verdict ~template ~patch ~attempts ~replay_ok ~notes =
      let secs = (Obs.Span.wall_clock_ns () -. t0) /. 1e9 in
      Obs.Scope.count
        (match verdict with
        | Fixed -> "fix/fixed"
        | Not_fixed _ -> "fix/not_fixed"
        | Regressed _ -> "fix/regressed")
        1;
      Ok
        {
          bug_id = bug.Corpus.Bug.id;
          bug_kind = Corpus.Bug.kind_name bug.Corpus.Bug.kind;
          pattern;
          verdict;
          template;
          patch;
          attempts;
          replay_ok;
          sweep_seeds = seeds;
          runs = !runs;
          secs;
          notes;
        }
    in
    (match res.Core.Diagnosis.top with
    | None ->
      finish ~pattern:None
        ~verdict:(Not_fixed "diagnosis produced no pattern to patch")
        ~template:None ~patch:None ~attempts:[] ~replay_ok:false ~notes:[]
    | Some top ->
      let pattern = top.Core.Statistics.pattern in
      let entry = bug.Corpus.Bug.entry in
      let sweep_seeds = sweep_seed_list ~collected:c ~seeds in
      let baseline = baseline_of ~collected:c ~entry ~seeds:sweep_seeds in
      runs := !runs + baseline.runs;
      let attempts = ref [] in
      let rec ladder = function
        | [] -> None
        | template :: rest ->
          let fresh = bug.Corpus.Bug.build () in
          let outcome =
            match
              Patch.synthesize ~m:fresh.Corpus.Bug.m ~pattern template
            with
            | Error e -> Error e
            | Ok p ->
              let j =
                judge_patch ~bug ~collected:c ~pattern ~baseline ~sweep_seeds
                  fresh.Corpus.Bug.m
              in
              runs := !runs + j.runs;
              Ok (p, j)
          in
          attempts :=
            {
              template;
              outcome = Result.map (fun (_, j) -> j) outcome;
            }
            :: !attempts;
          (match outcome with
          | Ok (p, j) when j.verdict = Fixed -> Some (template, p, j)
          | Ok _ | Error _ -> ladder rest)
      in
      let won = ladder (Patch.candidates pattern) in
      let attempts = List.rev !attempts in
      let pattern_id = Some (Core.Patterns.id pattern) in
      (match won with
      | Some (template, p, j) ->
        finish ~pattern:pattern_id ~verdict:Fixed ~template:(Some template)
          ~patch:(Some p.Patch.description) ~attempts ~replay_ok:j.replay_ok
          ~notes:j.notes
      | None ->
        (* No template fixed it: report the mildest failure (a not-fixed
           attempt over a regressed one over a synthesis refusal). *)
        let ranked =
          List.concat_map
            (fun (a : attempt) ->
              match a.outcome with
              | Ok j -> (
                match j.verdict with
                | Not_fixed _ -> [ (0, a.template, j.verdict, j) ]
                | Regressed _ -> [ (1, a.template, j.verdict, j) ]
                | Fixed -> [])
              | Error _ -> [])
            attempts
        in
        (match List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) ranked with
        | (_, template, verdict, j) :: _ ->
          finish ~pattern:pattern_id ~verdict ~template:(Some template)
            ~patch:None ~attempts ~replay_ok:j.replay_ok ~notes:j.notes
        | [] ->
          let why =
            String.concat "; "
              (List.map
                 (fun (a : attempt) ->
                   Printf.sprintf "%s: %s"
                     (Patch.template_name a.template)
                     (match a.outcome with Error e -> e | Ok _ -> "?"))
                 attempts)
          in
          finish ~pattern:pattern_id
            ~verdict:(Not_fixed ("no applicable template: " ^ why))
            ~template:None ~patch:None ~attempts ~replay_ok:false ~notes:[])))

(* --- the corpus-wide sweep ------------------------------------------------ *)

(* Same lane discipline as [Diffcheck.check_all]: one bug per pool lane,
   nested decode pinned sequential inside each lane, private telemetry
   scopes merged back in input order — so the parallel sweep's result
   list is identical to the sequential one's. *)
let fix_all ?jobs ?sweep_jobs ?cache ?seeds bugs =
  let arr = Array.of_list bugs in
  let n = Array.length arr in
  let sj = match sweep_jobs with Some j -> max 1 j | None -> 1 in
  let eff = min (min sj (Domain.recommended_domain_count ())) n in
  if eff <= 1 then
    List.map
      (fun (b : Corpus.Bug.t) ->
        (b.Corpus.Bug.id, fix_bug ?jobs ?cache ?seeds b))
      bugs
  else begin
    let telemetry = Obs.Scope.enabled () in
    let out = Array.make n None in
    let regs = Array.make n None in
    Pool.with_pool ~jobs:eff (fun pool ->
        Pool.run pool n (fun i ->
            Pool.with_default_jobs 1 @@ fun () ->
            let go () =
              out.(i) <- Some (fix_bug ~jobs:1 ?cache ?seeds arr.(i))
            in
            if telemetry then begin
              let c = Obs.Scope.make () in
              regs.(i) <- Some c.Obs.Scope.metrics;
              Obs.Scope.using c go
            end
            else go ()));
    Array.iter (Option.iter Obs.Scope.merge_worker) regs;
    List.init n (fun i ->
        ( arr.(i).Corpus.Bug.id,
          match out.(i) with Some r -> r | None -> assert false ))
  end

(* --- reporting ------------------------------------------------------------ *)

type summary = {
  bugs : int;
  fixed : int;
  not_fixed : int;
  regressed : int;
  errors : int;
  fix_rate : float;  (** fixed / all bugs, reproduction failures included *)
  by_kind : (string * int * int) list;  (** kind, fixed, total *)
  total_runs : int;
  total_secs : float;
  seeds_per_sec : float;  (** validation executions per wall-clock second *)
}

let summarize results =
  let bugs = List.length results in
  let fixed = ref 0 and not_fixed = ref 0 and regressed = ref 0 in
  let errors = ref 0 in
  let total_runs = ref 0 and total_secs = ref 0. in
  let kinds = Hashtbl.create 4 in
  List.iter
    (fun (_, r) ->
      match r with
      | Error _ -> incr errors
      | Ok (b : bug_report) ->
        total_runs := !total_runs + b.runs;
        total_secs := !total_secs +. b.secs;
        let f, t = try Hashtbl.find kinds b.bug_kind with Not_found -> (0, 0) in
        let won = match b.verdict with Fixed -> 1 | _ -> 0 in
        Hashtbl.replace kinds b.bug_kind (f + won, t + 1);
        (match b.verdict with
        | Fixed -> incr fixed
        | Not_fixed _ -> incr not_fixed
        | Regressed _ -> incr regressed))
    results;
  {
    bugs;
    fixed = !fixed;
    not_fixed = !not_fixed;
    regressed = !regressed;
    errors = !errors;
    fix_rate = (if bugs = 0 then 0. else float_of_int !fixed /. float_of_int bugs);
    by_kind =
      List.sort compare
        (Hashtbl.fold (fun k (f, t) acc -> (k, f, t) :: acc) kinds []);
    total_runs = !total_runs;
    total_secs = !total_secs;
    seeds_per_sec =
      (if !total_secs > 0. then float_of_int !total_runs /. !total_secs else 0.);
  }

let attempt_json (a : attempt) =
  Obs.Json.Obj
    [
      ("template", Obs.Json.String (Patch.template_name a.template));
      ( "outcome",
        Obs.Json.String
          (match a.outcome with
          | Error e -> "synthesis-error: " ^ e
          | Ok j -> (
            match j.verdict with
            | Fixed -> "fixed"
            | Not_fixed r -> "not-fixed: " ^ r
            | Regressed r -> "regressed: " ^ r)) );
    ]

let report_json (b : bug_report) =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.String b.bug_kind);
      ( "pattern",
        match b.pattern with
        | Some p -> Obs.Json.String p
        | None -> Obs.Json.Null );
      ("verdict", Obs.Json.String (verdict_name b.verdict));
      ("reason", Obs.Json.String (verdict_reason b.verdict));
      ( "template",
        match b.template with
        | Some t -> Obs.Json.String (Patch.template_name t)
        | None -> Obs.Json.Null );
      ( "patch",
        match b.patch with Some p -> Obs.Json.String p | None -> Obs.Json.Null
      );
      ("attempts", Obs.Json.List (List.map attempt_json b.attempts));
      ("replay_ok", Obs.Json.Bool b.replay_ok);
      ("sweep_seeds", Obs.Json.Int b.sweep_seeds);
      ("runs", Obs.Json.Int b.runs);
      ("secs", Obs.Json.Float b.secs);
      ("notes", Obs.Json.List (List.map (fun n -> Obs.Json.String n) b.notes));
    ]

let to_json results =
  let s = summarize results in
  Obs.Json.Obj
    [
      ( "summary",
        Obs.Json.Obj
          [
            ("bugs", Obs.Json.Int s.bugs);
            ("fixed", Obs.Json.Int s.fixed);
            ("not_fixed", Obs.Json.Int s.not_fixed);
            ("regressed", Obs.Json.Int s.regressed);
            ("errors", Obs.Json.Int s.errors);
            ("fix_rate", Obs.Json.Float s.fix_rate);
            ( "by_kind",
              Obs.Json.Obj
                (List.map
                   (fun (k, f, t) ->
                     ( k,
                       Obs.Json.Obj
                         [
                           ("fixed", Obs.Json.Int f); ("total", Obs.Json.Int t);
                         ] ))
                   s.by_kind) );
            ("total_runs", Obs.Json.Int s.total_runs);
            ("total_secs", Obs.Json.Float s.total_secs);
            ("validation_seeds_per_sec", Obs.Json.Float s.seeds_per_sec);
          ] );
      ( "bugs",
        Obs.Json.Obj
          (List.map
             (fun (id, r) ->
               ( id,
                 match r with
                 | Error e ->
                   Obs.Json.Obj [ ("error", Obs.Json.String e) ]
                 | Ok b -> report_json b ))
             results) );
    ]
