(** Pattern-directed patch synthesis: each diagnosed bug class maps to a
    small menu of IR transformations ({!template}s) applied to a fresh
    build of the bug program.  Synthesis is purely structural — it
    guarantees the patched module still verifies and that every original
    instruction keeps its iid — while {!Validate} is the semantic referee
    (failing-seed replay plus an HB-oracle sweep). *)

type template =
  | Lock_region
      (** atomicity: a new mutex across the local..anchor window, the
          remote access bracketed by the same mutex *)
  | Lock_function
      (** atomicity fallback: the mutex held across the whole enclosing
          function when the surgical window is rejected *)
  | Signal_wait
      (** order: flag + condvar; anchor side signals right after the
          anchor, remote side waits for the flag *)
  | Signal_at_exit
      (** order fallback: signal at every return of the anchor's
          function instead of directly after the anchor *)
  | Gate_serialize
      (** deadlock: a gate mutex held across each side's hold..attempt
          window, serializing the crossed acquisitions *)

val template_name : template -> string

val candidates : Snorlax_core.Patterns.t -> template list
(** Applicable templates for a diagnosed pattern, most surgical first. *)

type t = {
  template : template;
  mutex_global : string;  (** the minted mutex/gate global *)
  touched_funcs : string list;  (** functions whose bodies were edited *)
  description : string;
}

val synthesize :
  m:Lir.Irmod.t -> pattern:Snorlax_core.Patterns.t -> template ->
  (t, string) result
(** Apply the template to [m] {e in place}.  [Error] when the template
    does not fit the pattern's shape (window spans functions, side
    entries into the lock region, overlapping deadlock windows, ...);
    the module may be partially edited on error, so callers patch a
    throwaway build per attempt.  On [Ok] the module has been re-verified
    and re-laid-out. *)
