module Core = Snorlax_core
module Collector = Fleet.Collector
module Prng = Snorlax_util.Prng
module Pool = Snorlax_util.Pool

type trial = {
  cls : Fault.cls;
  seed : int;
  bug_id : string;
  faults : int;
  packets_sent : int;
  failing_sent : int;
  buckets : int;
  diagnosed : int;
  rc_matched : int;
  top_f1 : float;
  violations : string list;
  uncaught : string option;
  flight_tail : string option;
      (* the trial's flight-recorder dump, materialized only when an
         invariant fired; carries wall-clock stamps, so it decorates the
         reported examples but stays out of [observable] *)
}

type class_summary = {
  summary_cls : Fault.cls;
  trials : int;
  faults_injected : int;
  packets_sent : int;
  violation_count : int;
  uncaught_count : int;
  nondeterministic : int;
  diagnosed_trials : int;
  rc_matched_trials : int;
  survival_f1 : float;
}

type report = {
  seeds : int;
  endpoints : int;
  bug_ids : string list;
  classes : class_summary list;
  total_faults : int;
  total_violations : int;
  total_uncaught : int;
  violation_examples : string list;
}

type baseline = {
  bug : Corpus.Bug.t;
  failing : Core.Report.failing_report list;
  successful : Core.Report.success_report list;
}

(* One generator per (user seed, class, bug): trials are independent and
   each is reproducible in isolation. *)
let trial_prng ~seed ~cls ~bug_id =
  Prng.create
    ~seed:((seed * 0x9e3779b1) lxor Hashtbl.hash (Fault.name cls, bug_id))

(* Run the collector + per-bucket diagnosis over one faulty stream.  Any
   exception escaping this function is a totality violation, caught and
   recorded by the caller. *)
let ingest_and_diagnose ~modules ~policy ~cls ~(stream : Inject.stream) =
  let collector = Collector.create ~policy ~modules () in
  List.iter
    (fun p -> ignore (Collector.ingest collector p : (unit, string) result))
    stream.Inject.packets;
  let outcomes =
    List.map
      (fun b ->
        let res = Collector.diagnose collector b in
        let gt = (Collector.built collector b).Corpus.Bug.ground_truth in
        match res.Core.Diagnosis.top with
        | None ->
          { Invariant.diagnosed = false; rc_match = false; f1 = 0.0 }
        | Some top ->
          {
            Invariant.diagnosed = true;
            rc_match =
              Core.Accuracy.root_cause_match
                ~diagnosed:top.Core.Statistics.pattern ~ground_truth:gt;
            f1 = top.Core.Statistics.f1;
          })
      (Collector.buckets collector)
  in
  let violations =
    Invariant.check ~collector ~policy ~cls
      ~failing_sent:stream.Inject.failing_sent ~outcomes
  in
  (outcomes, violations)

let run_trial ~modules ~policy ~endpoints bl cls seed =
  let prng = trial_prng ~seed ~cls ~bug_id:bl.bug.Corpus.Bug.id in
  let stream =
    Inject.build ~prng ~cls ~bug_id:bl.bug.Corpus.Bug.id
      ~config:Pt.Config.default ~endpoints ~failing:bl.failing
      ~successful:bl.successful
  in
  Obs.Scope.count "chaos/trials" 1;
  Obs.Scope.count "chaos/faults" stream.Inject.faults;
  (* The trial's black box: collector log events (rejects, new buckets,
     pending evictions) land in this ring while the faulty stream is
     ingested; its tail is only materialized when an invariant fires. *)
  let recorder = Obs.Log.Recorder.create ~capacity:32 () in
  let outcomes, violations, uncaught =
    match
      Obs.Log.with_recorder recorder (fun () ->
          ingest_and_diagnose ~modules ~policy ~cls ~stream)
    with
    | outcomes, violations -> (outcomes, violations, None)
    | exception e -> ([], [], Some (Printexc.to_string e))
  in
  if violations <> [] then
    Obs.Scope.count "chaos/violations" (List.length violations);
  if uncaught <> None then Obs.Scope.count "chaos/uncaught" 1;
  let flight_tail =
    if violations = [] && uncaught = None then None
    else
      match Obs.Log.Recorder.dump recorder with
      | "" -> None
      | tail -> Some tail
  in
  {
    cls;
    seed;
    bug_id = bl.bug.Corpus.Bug.id;
    faults = stream.Inject.faults;
    packets_sent = stream.Inject.packets_sent;
    failing_sent = stream.Inject.failing_sent;
    buckets = List.length outcomes;
    diagnosed =
      List.length (List.filter (fun o -> o.Invariant.diagnosed) outcomes);
    rc_matched =
      List.length (List.filter (fun o -> o.Invariant.rc_match) outcomes);
    top_f1 =
      List.fold_left (fun acc o -> Float.max acc o.Invariant.f1) 0.0 outcomes;
    violations;
    uncaught;
    flight_tail;
  }

(* Everything the fixed-seed determinism invariant compares: the faulty
   stream, the collector's routing and every bucket's diagnosis must be
   pure functions of (bug, class, seed). *)
let observable t =
  ( t.faults,
    t.packets_sent,
    t.failing_sent,
    t.buckets,
    t.diagnosed,
    t.rc_matched,
    t.top_f1,
    t.violations,
    t.uncaught )

let summarize cls trials ~nondeterministic =
  let with_buckets = List.filter (fun t -> t.buckets > 0) trials in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 trials in
  {
    summary_cls = cls;
    trials = List.length trials;
    faults_injected = sum (fun t -> t.faults);
    packets_sent = sum (fun t -> t.packets_sent);
    violation_count = sum (fun t -> List.length t.violations);
    uncaught_count = sum (fun t -> if t.uncaught = None then 0 else 1);
    nondeterministic;
    diagnosed_trials = sum (fun t -> if t.diagnosed > 0 then 1 else 0);
    rc_matched_trials = sum (fun t -> if t.rc_matched > 0 then 1 else 0);
    survival_f1 =
      (match with_buckets with
      | [] -> 0.0
      | ts ->
        List.fold_left (fun acc t -> acc +. t.top_f1) 0.0 ts
        /. float_of_int (List.length ts));
  }

(* One bug's full trial matrix: for each class, [seeds] trials plus the
   fixed-seed determinism replay.  [modules] is the server-build cache
   the trials share — process-wide in the sequential path, lane-private
   in the parallel one (a lane only ever meets its own bug). *)
let trials_for_bug ~modules ~policy ~endpoints ~classes ~seeds bl =
  List.map
    (fun cls ->
      let trials =
        List.init seeds (fun seed ->
            run_trial ~modules ~policy ~endpoints bl cls seed)
      in
      (* Fixed-seed determinism: the first seed, replayed. *)
      let again = run_trial ~modules ~policy ~endpoints bl cls 0 in
      let nondet =
        if observable again <> observable (List.hd trials) then 1 else 0
      in
      (cls, trials, nondet))
    classes

let progress_line bl ~classes ~seeds =
  Printf.sprintf "%s: %d trials across %d fault classes" bl.bug.Corpus.Bug.id
    (seeds * List.length classes)
    (List.length classes)

let collect_baseline bug =
  match Corpus.Runner.collect bug () with
  | Error msg ->
    Error
      (Printf.sprintf "chaos: baseline for %s failed: %s" bug.Corpus.Bug.id
         msg)
  | Ok c ->
    Ok
      {
        bug;
        failing = c.Corpus.Runner.failing;
        successful = c.Corpus.Runner.successful;
      }

(* The sweep's lanes in bug input order, each carrying that bug's
   per-class trials.  Sequential mode is the historical loop exactly:
   every baseline collected first (stopping at the first failure, trials
   untouched), then trial matrices bug by bug with progress in between.
   Parallel mode fans one bug per pool lane — baseline collect included
   — with a lane-private modules table, sequential nested decode and a
   private telemetry context; lanes merge back in input order (first
   baseline error in input order wins, progress replays on the
   submitting domain), so the report is identical either way. *)
let sweep_lanes ~eff ~policy ~endpoints ~classes ~seeds ~progress bugs =
  if eff <= 1 then begin
    let modules = Hashtbl.create 16 in
    let baselines =
      List.fold_left
        (fun acc bug ->
          match acc with
          | Error _ as e -> e
          | Ok bls -> (
            match collect_baseline bug with
            | Error _ as e -> e
            | Ok bl -> Ok (bl :: bls)))
        (Ok []) bugs
    in
    match baselines with
    | Error e -> Error e
    | Ok baselines_rev ->
      Ok
        (List.map
           (fun bl ->
             let r =
               trials_for_bug ~modules ~policy ~endpoints ~classes ~seeds bl
             in
             progress (progress_line bl ~classes ~seeds);
             (bl, r))
           (List.rev baselines_rev))
  end
  else begin
    let arr = Array.of_list bugs in
    let n = Array.length arr in
    let telemetry = Obs.Scope.enabled () in
    let out = Array.make n None in
    let regs = Array.make n None in
    Pool.with_pool ~jobs:eff (fun pool ->
        Pool.run pool n (fun i ->
            Pool.with_default_jobs 1 @@ fun () ->
            let go () =
              let r =
                match collect_baseline arr.(i) with
                | Error _ as e -> e
                | Ok bl ->
                  let modules = Hashtbl.create 16 in
                  Ok
                    ( bl,
                      trials_for_bug ~modules ~policy ~endpoints ~classes
                        ~seeds bl )
              in
              out.(i) <- Some r
            in
            if telemetry then begin
              let c = Obs.Scope.make () in
              regs.(i) <- Some c.Obs.Scope.metrics;
              Obs.Scope.using c go
            end
            else go ()));
    Array.iter (Option.iter Obs.Scope.merge_worker) regs;
    let first_error = ref None in
    Array.iter
      (fun r ->
        match (r, !first_error) with
        | Some (Error e), None -> first_error := Some e
        | _ -> ())
      out;
    match !first_error with
    | Some e -> Error e
    | None ->
      Ok
        (List.init n (fun i ->
             match out.(i) with
             | Some (Ok lane) ->
               let bl, _ = lane in
               progress (progress_line bl ~classes ~seeds);
               lane
             | _ -> assert false))
  end

let run ?(policy = Collector.default_policy) ?(endpoints = 3)
    ?(classes = Fault.all) ?(progress = fun _ -> ()) ?jobs ~seeds bugs =
  if seeds < 1 then Error "chaos: seeds < 1"
  else if bugs = [] then Error "chaos: no bugs selected"
  else if endpoints < 1 then Error "chaos: endpoints < 1"
  else
    Obs.Scope.with_span "chaos"
      ~args:
        [
          ("seeds", Obs.Span.Int seeds);
          ("bugs", Obs.Span.Int (List.length bugs));
        ]
    @@ fun () ->
    let eff =
      let j = match jobs with Some j -> max 1 j | None -> 1 in
      min (min j (Domain.recommended_domain_count ())) (List.length bugs)
    in
    match sweep_lanes ~eff ~policy ~endpoints ~classes ~seeds ~progress bugs with
    | Error e -> Error e
    | Ok lanes ->
      let baselines = List.map fst lanes in
      let trials_of cls =
        List.concat_map
          (fun (_, per_class) ->
            List.concat_map
              (fun (c, ts, _) -> if c = cls then ts else [])
              per_class)
          lanes
      in
      let nondet_of cls =
        List.fold_left
          (fun acc (_, per_class) ->
            List.fold_left
              (fun a (c, _, nd) -> if c = cls then a + nd else a)
              acc per_class)
          0 lanes
      in
      let summaries =
        List.map
          (fun cls ->
            summarize cls (trials_of cls) ~nondeterministic:(nondet_of cls))
          classes
      in
      let all_trials = List.concat_map trials_of classes in
      (* A reported example is the violation plus the trial's flight-
         recorder tail — the events leading up to the failure, not just
         the bare reconciliation diff.  Tails carry wall-clock stamps,
         which is why they decorate examples here instead of living in
         [trial.violations] (compared by the determinism invariant). *)
      let with_tail t msg =
        match t.flight_tail with
        | None -> msg
        | Some tail ->
          msg ^ "\n  "
          ^ String.concat "\n  " (String.split_on_char '\n' tail)
      in
      let examples =
        List.filteri
          (fun i _ -> i < 5)
          (List.concat_map
             (fun t -> List.map (with_tail t) t.violations)
             all_trials
          @ List.filter_map
              (fun t -> Option.map (with_tail t) t.uncaught)
              all_trials)
      in
      Ok
        {
          seeds;
          endpoints;
          bug_ids = List.map (fun bl -> bl.bug.Corpus.Bug.id) baselines;
          classes = summaries;
          total_faults =
            List.fold_left (fun a s -> a + s.faults_injected) 0 summaries;
          total_violations =
            List.fold_left (fun a s -> a + s.violation_count) 0 summaries;
          total_uncaught =
            List.fold_left
              (fun a s -> a + s.uncaught_count + s.nondeterministic)
              0 summaries;
          violation_examples = examples;
        }

let ok r = r.total_violations = 0 && r.total_uncaught = 0

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("bench", String "chaos");
      ("seeds", Int r.seeds);
      ("endpoints", Int r.endpoints);
      ("bugs", List (List.map (fun id -> String id) r.bug_ids));
      ( "classes",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("class", String (Fault.name s.summary_cls));
                   ( "payload_preserving",
                     Bool (Fault.payload_preserving s.summary_cls) );
                   ("trials", Int s.trials);
                   ("faults_injected", Int s.faults_injected);
                   ("packets_sent", Int s.packets_sent);
                   ("invariant_violations", Int s.violation_count);
                   ("uncaught_exceptions", Int s.uncaught_count);
                   ("nondeterministic", Int s.nondeterministic);
                   ("diagnosed_trials", Int s.diagnosed_trials);
                   ("root_cause_matched_trials", Int s.rc_matched_trials);
                   ("survival_f1", Float s.survival_f1);
                 ])
             r.classes) );
      ("total_faults_injected", Int r.total_faults);
      ("total_invariant_violations", Int r.total_violations);
      ("total_uncaught_exceptions", Int r.total_uncaught);
      ("ok", Bool (ok r));
    ]
