(** Machine-checkable invariants of the ingest path, evaluated after one
    chaos trial.  A violation is a human-readable sentence; an empty list
    means the pipeline held up under the injected faults.

    The checks, mirroring ISSUE/DESIGN:
    - counters reconcile: every packet the collector received is
      accounted for exactly once (rejected, seen by a bucket, still
      pending, or evicted from the pending pool);
    - memory bounded: per-bucket kept reports respect the sampling
      policy, every pending pool respects [max_pending];
    - graceful degradation: under a payload-preserving fault class, at
      least one surviving failing report must produce a bucket whose
      diagnosis ranks the true root cause, and zero surviving failing
      reports must leave zero buckets (never a crash).

    Exception totality and fixed-seed determinism are enforced by the
    {!Harness}, which owns the trial loop. *)

type outcome = {
  diagnosed : bool;  (** the bucket's diagnosis produced a top pattern *)
  rc_match : bool;  (** ... and it matches the bug's ground truth *)
  f1 : float;  (** top pattern's F1, 0 when none *)
}
(** Per-bucket diagnosis outcome, computed by the harness. *)

val check :
  collector:Fleet.Collector.t ->
  policy:Fleet.Collector.policy ->
  cls:Fault.cls ->
  failing_sent:int ->
  outcomes:outcome list ->
  string list
(** [outcomes] has one entry per bucket, in bucket creation order. *)
