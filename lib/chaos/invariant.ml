module Collector = Fleet.Collector

type outcome = { diagnosed : bool; rc_match : bool; f1 : float }

let check ~collector ~(policy : Collector.policy) ~cls ~failing_sent ~outcomes
    =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let totals = Collector.totals collector in
  let buckets = Collector.buckets collector in
  (* 1. Counters reconcile. *)
  let seen =
    List.fold_left
      (fun acc (b : Collector.bucket) ->
        acc + b.Collector.failing_seen + b.Collector.success_seen)
      0 buckets
  in
  let accounted =
    totals.Collector.decode_errors + seen + totals.Collector.unrouted
    + totals.Collector.pending_dropped
  in
  if totals.Collector.received <> accounted then
    add
      "counters do not reconcile: received %d <> %d (= %d rejected + %d seen \
       + %d pending + %d evicted)"
      totals.Collector.received accounted totals.Collector.decode_errors seen
      totals.Collector.unrouted totals.Collector.pending_dropped;
  (* 2. Memory bounded. *)
  List.iter
    (fun (b : Collector.bucket) ->
      if Collector.failing_kept b > policy.Collector.max_failing then
        add "bucket %s keeps %d failing reports (cap %d)"
          (Fleet.Signature.to_string b.Collector.signature)
          (Collector.failing_kept b) policy.Collector.max_failing;
      if Collector.success_kept b > policy.Collector.max_success then
        add "bucket %s keeps %d success reports (cap %d)"
          (Fleet.Signature.to_string b.Collector.signature)
          (Collector.success_kept b) policy.Collector.max_success)
    buckets;
  List.iter
    (fun (bug_id, held) ->
      if held > policy.Collector.max_pending then
        add "pending pool for %s holds %d reports (cap %d)" bug_id held
          policy.Collector.max_pending)
    (Collector.pending_pools collector);
  (* 3. Graceful degradation. *)
  if failing_sent = 0 then begin
    if buckets <> [] then
      add "%d bucket(s) exist although no failing report was delivered"
        (List.length buckets)
  end
  else if Fault.payload_preserving cls then begin
    (* Surviving failing reports are byte-identical to the lab run: they
       must bucket, and their diagnosis must rank the true root cause. *)
    if buckets = [] then
      add "no bucket although %d intact failing report(s) arrived"
        failing_sent
    else if not (List.exists (fun o -> o.diagnosed && o.rc_match) outcomes)
    then
      add
        "true root cause not ranked although %d intact failing report(s) \
         arrived"
        failing_sent
  end;
  List.rev !violations
