(** The chaos trial loop: reproduce each corpus bug once in the lab, then
    replay it through the full wire -> collector -> diagnosis pipeline
    [seeds] times per fault class, with {!Inject} damaging the replay and
    {!Invariant} auditing the collector afterwards.

    Three properties are enforced by the harness itself, on every trial:
    exceptions never escape the ingest path (a raise is recorded as an
    uncaught-exception count, the trial keeps going), the first seed of
    every (bug, class) pair is executed twice and must produce identical
    observable results (fixed-seed determinism), and baseline
    reproduction failures abort the run with [Error] before any fault is
    injected. *)

type trial = {
  cls : Fault.cls;
  seed : int;
  bug_id : string;
  faults : int;  (** mutation events injected into this trial's stream *)
  packets_sent : int;
  failing_sent : int;
  buckets : int;
  diagnosed : int;  (** buckets whose diagnosis produced a top pattern *)
  rc_matched : int;  (** ... matching the bug's ground truth *)
  top_f1 : float;  (** best bucket F1; 0 when no bucket diagnosed *)
  violations : string list;
  uncaught : string option;  (** exception that escaped, if any *)
  flight_tail : string option;
      (** flight-recorder dump of the collector events leading up to the
          failure; [None] on clean trials.  Carries wall-clock stamps,
          so it decorates {!report.violation_examples} but is excluded
          from the fixed-seed determinism comparison. *)
}

type class_summary = {
  summary_cls : Fault.cls;
  trials : int;
  faults_injected : int;
  packets_sent : int;
  violation_count : int;
  uncaught_count : int;
  nondeterministic : int;  (** (bug, class) pairs whose re-run diverged *)
  diagnosed_trials : int;  (** trials where >= 1 bucket diagnosed *)
  rc_matched_trials : int;
  survival_f1 : float;
      (** mean best-bucket F1 over trials that produced >= 1 bucket —
          how well diagnosis survives this fault class *)
}

type report = {
  seeds : int;
  endpoints : int;
  bug_ids : string list;
  classes : class_summary list;  (** in {!Fault.all} order *)
  total_faults : int;
  total_violations : int;
  total_uncaught : int;
  violation_examples : string list;  (** first few, for error output *)
}

val run :
  ?policy:Fleet.Collector.policy ->
  ?endpoints:int ->
  ?classes:Fault.cls list ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  seeds:int ->
  Corpus.Bug.t list ->
  (report, string) result
(** [run ~seeds bugs] executes [seeds] trials per (bug, fault class).
    [endpoints] (default 3) simulated machines replay each bug.
    [Error] when [seeds < 1], [bugs] is empty, or a bug's lab baseline
    fails to reproduce.  [progress] receives one line per completed bug.
    [jobs] (default 1 = the historical sequential loop) fans the sweep
    one bug per lane across a scoped domain pool — baseline collect and
    all that bug's trials together, with a lane-private server-build
    table and private telemetry merged back in input order.  Trials are
    already independent per (bug, class, seed), so the report is
    identical whatever [jobs]; [progress] then fires on the submitting
    domain as lanes merge, still in bug order. *)

val to_json : report -> Obs.Json.t
(** The BENCH_chaos.json document: run parameters, per-class rows
    (faults injected, invariant violations, uncaught exceptions,
    determinism, survival F1) and fleet-wide totals. *)

val ok : report -> bool
(** True when the run recorded zero invariant violations, zero uncaught
    exceptions and zero nondeterministic pairs — the chaos gate. *)
