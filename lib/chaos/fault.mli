(** The fault classes the chaos harness injects into the ingest path.

    Each class models one thing that goes wrong between an in-production
    endpoint and the diagnosis server (ring-buffer hardware limits, a
    lossy network, dying machines, unsynchronized clocks).  The harness
    replays corpus bugs through the full tracer -> wire -> collector ->
    diagnosis pipeline under one class at a time and checks the pipeline's
    total-ness and accounting invariants after every run. *)

type cls =
  | Ring_truncate
      (** a thread's PT ring snapshot is cut short at an arbitrary byte
          offset — the failure happened before the driver could copy the
          whole ring *)
  | Ring_overwrite
      (** a span of ring bytes is overwritten with garbage — the hardware
          wrapped mid-copy *)
  | Wire_drop  (** report packets are lost in transit *)
  | Wire_duplicate  (** report packets are delivered twice *)
  | Wire_reorder  (** report packets arrive in arbitrary order *)
  | Wire_bitflip  (** a delivered packet has random bits flipped *)
  | Success_first
      (** every watchpoint success report arrives before any failing
          report — the order §4.5 never sees in the lab *)
  | Endpoint_death
      (** one endpoint dies mid-stream: a suffix of its packets is never
          sent *)
  | Clock_skew
      (** each endpoint's report timestamps carry a constant clock offset
          — fleets do not share a clock *)

val all : cls list
(** Every class, in a stable order. *)

val name : cls -> string
(** Stable kebab-case identifier, e.g. ["wire-drop"] (used in the summary
    table, BENCH JSON and [--fault] filters). *)

val of_name : string -> cls option

val payload_preserving : cls -> bool
(** True when the class only loses, repeats or reorders packets without
    corrupting the content of any packet that does arrive.  For these
    classes a surviving failing report is byte-identical to the lab run,
    so the harness additionally requires the diagnosis to rank the true
    root cause whenever at least one failing report survives.  Content
    corrupting classes ([Ring_truncate], [Ring_overwrite], [Wire_bitflip],
    [Clock_skew]) are only required to degrade without crashing. *)

val describe : cls -> string
(** One-line human description for the summary table. *)
