module Report = Snorlax_core.Report
module Prng = Snorlax_util.Prng
module Wire = Fleet.Wire

type stream = {
  packets : bytes list;
  faults : int;
  packets_sent : int;
  failing_sent : int;
}

type kind = F | S

(* --- report-content mutations -------------------------------------- *)

(* Each ring snapshot is hit with probability 1/2, so most reports are
   damaged somewhere but rarely everywhere — the interesting regime for
   graceful degradation. *)
let hit_p = 0.5

(* Per-packet probability for the lossy-wire classes. *)
let wire_p = 0.3

let truncate_ring prng faults (tid, ring) =
  let len = Bytes.length ring in
  if len = 0 || not (Prng.chance prng ~p:hit_p) then (tid, ring)
  else begin
    incr faults;
    (tid, Bytes.sub ring 0 (Prng.int prng ~bound:len))
  end

let overwrite_ring prng faults (tid, ring) =
  let len = Bytes.length ring in
  if len = 0 || not (Prng.chance prng ~p:hit_p) then (tid, ring)
  else begin
    incr faults;
    let ring = Bytes.copy ring in
    let start = Prng.int prng ~bound:len in
    let span = 1 + Prng.int prng ~bound:(min 16 (len - start)) in
    for i = start to start + span - 1 do
      Bytes.set ring i (Char.chr (Prng.int prng ~bound:256))
    done;
    (tid, ring)
  end

let mutate_rings cls prng faults traces =
  match (cls : Fault.cls) with
  | Fault.Ring_truncate -> List.map (truncate_ring prng faults) traces
  | Fault.Ring_overwrite -> List.map (overwrite_ring prng faults) traces
  | _ -> traces

(* The wire format carries unsigned times; a skewed clock cannot make a
   timestamp negative, only early. *)
let skew_time off t = max 0 (t + off)

let skew_offset prng ~faults (cls : Fault.cls) =
  match cls with
  | Fault.Clock_skew ->
    let off = Prng.in_range prng ~lo:(-1_000_000) ~hi:1_000_000 in
    if off <> 0 then incr faults;
    off
  | _ -> 0

let damage_failing cls prng ~faults ~skew (r : Report.failing_report) =
  let r = { r with Report.traces = mutate_rings cls prng faults r.traces } in
  if skew = 0 then r
  else { r with Report.failure_time_ns = skew_time skew r.Report.failure_time_ns }

let damage_success cls prng ~faults ~skew (r : Report.success_report) =
  let r =
    { r with Report.s_traces = mutate_rings cls prng faults r.s_traces }
  in
  if skew = 0 then r
  else { r with Report.trigger_time_ns = skew_time skew r.Report.trigger_time_ns }

(* Wire-level faults act on an (already interleaved) arrival stream. *)
let wire_faults cls prng ~faults arrival =
  match (cls : Fault.cls) with
  | Fault.Wire_drop ->
    List.filter
      (fun _ ->
        if Prng.chance prng ~p:wire_p then begin
          incr faults;
          false
        end
        else true)
      arrival
  | Fault.Wire_duplicate ->
    List.concat_map
      (fun p ->
        if Prng.chance prng ~p:wire_p then begin
          incr faults;
          [ p; p ]
        end
        else [ p ])
      arrival
  | Fault.Wire_reorder ->
    let a = Array.of_list arrival in
    let before = Array.copy a in
    Prng.shuffle prng a;
    Array.iteri (fun i x -> if not (x == before.(i)) then incr faults) a;
    Array.to_list a
  | Fault.Wire_bitflip ->
    List.map
      (fun ((k, b) as p) ->
        if Bytes.length b > 0 && Prng.chance prng ~p:wire_p then begin
          incr faults;
          let b = Bytes.copy b in
          let pos = Prng.int prng ~bound:(Bytes.length b) in
          let bit = Prng.int prng ~bound:8 in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
          (k, b)
        end
        else p)
      arrival
  | Fault.Success_first ->
    let succ, fail = List.partition (fun (k, _) -> k = S) arrival in
    faults := !faults + List.length succ;
    succ @ fail
  | Fault.Ring_truncate | Fault.Ring_overwrite | Fault.Endpoint_death
  | Fault.Clock_skew ->
    arrival

(* --- stream assembly ------------------------------------------------ *)

let build ~prng ~cls ~bug_id ~config ~endpoints ~failing ~successful =
  if endpoints < 1 then invalid_arg "Inject.build: endpoints < 1";
  let faults = ref 0 in
  let streams =
    Array.init endpoints (fun e ->
        let skew = skew_offset prng ~faults cls in
        (* Deterministic per-endpoint provenance, so the chaos stream
           also exercises the v2 prov block through every fault class. *)
        let prov =
          Some
            {
              Wire.runs = e + 1;
              sync_ops = 64 + (e * 7);
              sync_digest = e * 0x9e3779b9 land max_int;
            }
        in
        let envelope payload =
          { Wire.endpoint = e; seed = e + 1; bug_id; config; prov; payload }
        in
        let failing_pkts =
          List.map
            (fun (r : Report.failing_report) ->
              let r = damage_failing cls prng ~faults ~skew r in
              (F, Wire.encode (envelope (Wire.Failing r))))
            failing
        in
        let success_pkts =
          List.map
            (fun (r : Report.success_report) ->
              let r = damage_success cls prng ~faults ~skew r in
              (S, Wire.encode (envelope (Wire.Success r))))
            successful
        in
        failing_pkts @ success_pkts)
  in
  (* Endpoint death: a suffix of one endpoint's stream never leaves the
     machine (the prefix length is uniform in [0, n-1], so at least one
     packet is always lost). *)
  (match cls with
  | Fault.Endpoint_death ->
    let e = Prng.int prng ~bound:endpoints in
    let s = streams.(e) in
    let n = List.length s in
    if n > 0 then begin
      let keep = Prng.int prng ~bound:n in
      faults := !faults + (n - keep);
      streams.(e) <- List.filteri (fun i _ -> i < keep) s
    end
  | _ -> ());
  (* Round-robin interleave simulates concurrent endpoint arrival. *)
  let arrival =
    let q = Array.map (fun l -> ref l) streams in
    let out = ref [] in
    let progressed = ref true in
    while !progressed do
      progressed := false;
      Array.iter
        (fun r ->
          match !r with
          | [] -> ()
          | p :: rest ->
            out := p :: !out;
            r := rest;
            progressed := true)
        q
    done;
    List.rev !out
  in
  let arrival = wire_faults cls prng ~faults arrival in
  {
    packets = List.map snd arrival;
    faults = !faults;
    packets_sent = List.length arrival;
    failing_sent =
      List.length (List.filter (fun (k, _) -> k = F) arrival);
  }
