(** Turn one reproduced bug into a faulty fleet packet stream.

    The harness reproduces each corpus bug once (in the lab, no faults),
    then replays the same failing/success reports as if [endpoints]
    identical machines had hit the bug, injecting exactly one
    {!Fault.cls} into the replay.  Ring and clock faults mutate report
    content before encoding; wire faults mutate the encoded packet
    stream; ordering faults permute arrival.  Everything is a pure
    function of the given generator, so one seed reproduces one trial. *)

type kind = F | S
(** What a packet carries — tracked alongside the encoded bytes so
    ordering faults ([Success_first]) and accounting can tell report
    kinds apart without re-decoding. *)

type stream = {
  packets : bytes list;  (** arrival order at the collector *)
  faults : int;  (** mutation events performed (0 when nothing fired) *)
  packets_sent : int;  (** [List.length packets] *)
  failing_sent : int;
      (** failing-report packets present in [packets], duplicates
          included — the graceful-degradation invariant keys off whether
          any failing report survived the faults *)
}

(** The three fault layers, exposed separately so other packet sources
    (the streaming fleet's traffic generator) can inject the same fault
    classes without re-deriving the probabilities.  All of them count
    each mutation event into [faults] and are pure functions of the
    given generator. *)

val skew_offset : Snorlax_util.Prng.t -> faults:int ref -> Fault.cls -> int
(** A per-endpoint clock offset in ns, nonzero only for [Clock_skew]
    (uniform in ±1ms). *)

val damage_failing :
  Fault.cls ->
  Snorlax_util.Prng.t ->
  faults:int ref ->
  skew:int ->
  Snorlax_core.Report.failing_report ->
  Snorlax_core.Report.failing_report
(** Apply ring faults (truncate/overwrite, each ring hit with p=1/2) and
    the clock skew to one failing report's content. *)

val damage_success :
  Fault.cls ->
  Snorlax_util.Prng.t ->
  faults:int ref ->
  skew:int ->
  Snorlax_core.Report.success_report ->
  Snorlax_core.Report.success_report
(** Same for a success report ([s_traces] / [trigger_time_ns]). *)

val wire_faults :
  Fault.cls ->
  Snorlax_util.Prng.t ->
  faults:int ref ->
  (kind * bytes) list ->
  (kind * bytes) list
(** Apply wire-level faults (drop/duplicate/bitflip each packet with
    p=0.3, full-stream reorder, success-before-failure partition) to an
    arrival stream.  Ring, death and skew classes pass through. *)

val build :
  prng:Snorlax_util.Prng.t ->
  cls:Fault.cls ->
  bug_id:string ->
  config:Pt.Config.t ->
  endpoints:int ->
  failing:Snorlax_core.Report.failing_report list ->
  successful:Snorlax_core.Report.success_report list ->
  stream
(** Requires [endpoints >= 1].  Every endpoint ships the same baseline
    reports (failing first, like {!Fleet.Endpoint.run}); streams are
    interleaved round-robin to simulate concurrent arrival, then the
    fault class is applied.  Clock skew clamps shifted timestamps at 0
    (the wire format carries unsigned times). *)
