(** Turn one reproduced bug into a faulty fleet packet stream.

    The harness reproduces each corpus bug once (in the lab, no faults),
    then replays the same failing/success reports as if [endpoints]
    identical machines had hit the bug, injecting exactly one
    {!Fault.cls} into the replay.  Ring and clock faults mutate report
    content before encoding; wire faults mutate the encoded packet
    stream; ordering faults permute arrival.  Everything is a pure
    function of the given generator, so one seed reproduces one trial. *)

type stream = {
  packets : bytes list;  (** arrival order at the collector *)
  faults : int;  (** mutation events performed (0 when nothing fired) *)
  packets_sent : int;  (** [List.length packets] *)
  failing_sent : int;
      (** failing-report packets present in [packets], duplicates
          included — the graceful-degradation invariant keys off whether
          any failing report survived the faults *)
}

val build :
  prng:Snorlax_util.Prng.t ->
  cls:Fault.cls ->
  bug_id:string ->
  config:Pt.Config.t ->
  endpoints:int ->
  failing:Snorlax_core.Report.failing_report list ->
  successful:Snorlax_core.Report.success_report list ->
  stream
(** Requires [endpoints >= 1].  Every endpoint ships the same baseline
    reports (failing first, like {!Fleet.Endpoint.run}); streams are
    interleaved round-robin to simulate concurrent arrival, then the
    fault class is applied.  Clock skew clamps shifted timestamps at 0
    (the wire format carries unsigned times). *)
