type cls =
  | Ring_truncate
  | Ring_overwrite
  | Wire_drop
  | Wire_duplicate
  | Wire_reorder
  | Wire_bitflip
  | Success_first
  | Endpoint_death
  | Clock_skew

let all =
  [
    Ring_truncate;
    Ring_overwrite;
    Wire_drop;
    Wire_duplicate;
    Wire_reorder;
    Wire_bitflip;
    Success_first;
    Endpoint_death;
    Clock_skew;
  ]

let name = function
  | Ring_truncate -> "ring-truncate"
  | Ring_overwrite -> "ring-overwrite"
  | Wire_drop -> "wire-drop"
  | Wire_duplicate -> "wire-duplicate"
  | Wire_reorder -> "wire-reorder"
  | Wire_bitflip -> "wire-bitflip"
  | Success_first -> "success-first"
  | Endpoint_death -> "endpoint-death"
  | Clock_skew -> "clock-skew"

let of_name s = List.find_opt (fun c -> String.equal (name c) s) all

let payload_preserving = function
  | Wire_drop | Wire_duplicate | Wire_reorder | Success_first | Endpoint_death
    ->
    true
  | Ring_truncate | Ring_overwrite | Wire_bitflip | Clock_skew -> false

let describe = function
  | Ring_truncate -> "ring snapshot cut short at a random offset"
  | Ring_overwrite -> "span of ring bytes overwritten with garbage"
  | Wire_drop -> "packets lost in transit"
  | Wire_duplicate -> "packets delivered twice"
  | Wire_reorder -> "packets arrive in arbitrary order"
  | Wire_bitflip -> "random bits flipped in delivered packets"
  | Success_first -> "all successes arrive before any failure"
  | Endpoint_death -> "one endpoint dies mid-stream"
  | Clock_skew -> "per-endpoint constant clock offset"
