module Report = Snorlax_core.Report

type run = { result : Sim.Interp.run_result; driver : Pt.Driver.t }

let run_traced ~built ~entry ~seed ?(pt_config = Pt.Config.default)
    ?(watch_pcs = []) ?extra_hooks () =
  let m = built.Bug.m in
  Lir.Irmod.layout m;
  let driver = Pt.Driver.create ~config:pt_config () in
  if watch_pcs <> [] then Pt.Driver.set_watchpoints driver ~pcs:watch_pcs;
  let hooks =
    match extra_hooks with
    | None -> Pt.Driver.hooks driver
    | Some h -> Sim.Hooks.combine (Pt.Driver.hooks driver) h
  in
  let hooks =
    (* Scheduler telemetry rides along whenever a scope is live; its
       callbacks cost zero virtual time, so seeds reproduce identically. *)
    if Obs.Scope.enabled () then Sim.Hooks.combine hooks (Sim.Telemetry.hooks ())
    else hooks
  in
  let config = { Sim.Interp.default_config with seed; hooks } in
  let result = Sim.Interp.run ~config m ~entry in
  { result; driver }

let run_untraced ~built ~entry ~seed () =
  Lir.Irmod.layout built.Bug.m;
  let config = { Sim.Interp.default_config with seed } in
  Sim.Interp.run ~config built.Bug.m ~entry

type sync_profile = { sync_ops : int; sync_digest : int }

(* The provenance observer: an [on_obs] hook is pure observation with
   zero virtual-time cost, so attaching it cannot perturb the schedule
   being recorded (the happens-before oracle relies on the same
   property).  It keeps a count of synchronization operations and a ring
   of the last [sync_window] ops' static identities, digested FNV-1a
   style at report time.  Memory accesses are excluded — they would
   swamp the window and the interesting tail is the lock/condvar/thread
   traffic right before the failure. *)
let sync_window = 16

let sync_observer () =
  let ops = ref 0 in
  let ring = Array.make sync_window 0 in
  let note tag tid iid =
    ring.(!ops mod sync_window) <- (tag * 0x1000003) lxor (tid * 8191) lxor iid;
    incr ops
  in
  let feed ev =
    match ev with
    | Sim.Hooks.Obs_access _ -> ()
    | Sim.Hooks.Obs_lock_attempt { tid; iid; _ } -> note 1 tid iid
    | Sim.Hooks.Obs_lock_acquired { tid; iid; _ } -> note 2 tid iid
    | Sim.Hooks.Obs_lock_released { tid; iid; _ } -> note 3 tid iid
    | Sim.Hooks.Obs_cond_park { tid; iid; _ } -> note 4 tid iid
    | Sim.Hooks.Obs_cond_wake { waker_tid; woken_tid; _ } ->
      note 5 waker_tid woken_tid
    | Sim.Hooks.Obs_spawn { parent_tid; child_tid; iid; _ } ->
      note 6 parent_tid (iid lxor (child_tid * 31))
    | Sim.Hooks.Obs_join { tid; iid; _ } -> note 7 tid iid
  in
  let hooks = { Sim.Hooks.none with Sim.Hooks.on_obs = Some feed } in
  let profile () =
    let n = min !ops sync_window in
    let start = if !ops <= sync_window then 0 else !ops mod sync_window in
    let h = ref 0x5bd1e995 in
    for i = 0 to n - 1 do
      h := (!h lxor ring.((start + i) mod sync_window)) * 0x100000001b3
    done;
    { sync_ops = !ops; sync_digest = !h land max_int }
  in
  (hooks, profile)

type collected = {
  built : Bug.built;
  failing : Report.failing_report list;
  failing_seeds : int list;
  failing_sync : sync_profile list;
  successful : Report.success_report list;
  success_seeds : int list;
  success_sync : sync_profile list;
  runs_needed : int;
}

let watch_pcs_for m (r : Report.failing_report) =
  let iid = Report.failing_anchor_iid r in
  let i = Lir.Irmod.instr_by_iid m iid in
  let f, b = Lir.Irmod.location_of_iid m iid in
  let cfg = Lir.Cfg.of_func f in
  let pred_pcs =
    List.map
      (fun label ->
        Lir.Irmod.block_start_pc m ~fname:f.Lir.Func.fname ~label)
      (Lir.Cfg.predecessors cfg b.Lir.Block.label)
  in
  i.Lir.Instr.pc :: pred_pcs

let collect bug ?(pt_config = Pt.Config.default) ?(failing_count = 1)
    ?(success_per_failing = 10) ?(max_tries = 5000) ?(seed_base = 1) () =
  Obs.Scope.with_span ("corpus/" ^ bug.Bug.id)
    ~args:[ ("system", Obs.Span.Str bug.Bug.system) ]
  @@ fun () ->
  let built = bug.Bug.build () in
  let entry = bug.Bug.entry in
  let failing = ref [] in
  let failing_seeds = ref [] in
  let failing_sync = ref [] in
  let successful = ref [] in
  let success_seeds = ref [] in
  let success_sync = ref [] in
  let watch = ref [] in
  let runs_needed = ref 0 in
  let want_success () = success_per_failing * List.length !failing in
  let seed = ref seed_base in
  while
    (List.length !failing < failing_count
    || List.length !successful < want_success ())
    && !seed - seed_base < max_tries
  do
    if List.length !failing < failing_count then incr runs_needed;
    Obs.Scope.count "corpus/runs" 1;
    Obs.Log.debug "corpus/run"
      ~fields:[ ("bug", Obs.Log.Str bug.Bug.id); ("seed", Obs.Log.Int !seed) ];
    let obs_hooks, sync_profile = sync_observer () in
    let r =
      run_traced ~built ~entry ~seed:!seed ~pt_config ~watch_pcs:!watch
        ~extra_hooks:obs_hooks ()
    in
    (match r.result.Sim.Interp.outcome with
    | Sim.Interp.Failed { failure; time_ns } ->
      if List.length !failing < failing_count then begin
        let snap = Pt.Driver.snapshot_now r.driver ~at_time_ns:time_ns in
        let report =
          Report.of_sim_failure failure ~time_ns
            ~traces:snap.Pt.Driver.traces
        in
        Obs.Log.warn "corpus/sim_failure"
          ~fields:
            [
              ("bug", Obs.Log.Str bug.Bug.id);
              ("seed", Obs.Log.Int !seed);
              ("kind", Obs.Log.Str (Report.kind_label report));
              ("time_ns", Obs.Log.Int (int_of_float time_ns));
            ];
        failing := !failing @ [ report ];
        failing_seeds := !failing_seeds @ [ !seed ];
        failing_sync := !failing_sync @ [ sync_profile () ];
        Obs.Scope.count "corpus/failing_reports" 1;
        if !watch = [] then watch := watch_pcs_for built.Bug.m report
      end
    | Sim.Interp.Completed ->
      if
        !watch <> []
        && List.length !successful < want_success ()
      then (
        match Pt.Driver.watch_snapshot r.driver with
        | Some snap ->
          let trigger_pc = Option.value ~default:0 snap.Pt.Driver.trigger_pc in
          let trigger_tid =
            Option.value ~default:0 snap.Pt.Driver.trigger_tid
          in
          successful :=
            !successful
            @ [
                {
                  Report.s_traces = snap.Pt.Driver.traces;
                  trigger_time_ns = int_of_float snap.Pt.Driver.at_time_ns;
                  trigger_tid;
                  trigger_pc;
                };
              ];
          success_seeds := !success_seeds @ [ !seed ];
          success_sync := !success_sync @ [ sync_profile () ];
          Obs.Scope.count "corpus/successful_reports" 1
        | None -> ())
    | Sim.Interp.Stuck | Sim.Interp.Fuel_exhausted -> ());
    incr seed
  done;
  if List.length !failing < failing_count then
    Error
      (Printf.sprintf "bug %s did not reproduce in %d runs" bug.Bug.id max_tries)
  else if List.length !successful < want_success () then
    Error
      (Printf.sprintf "bug %s: only %d successful traces in %d runs" bug.Bug.id
         (List.length !successful) max_tries)
  else
    Ok
      {
        built;
        failing = !failing;
        failing_seeds = !failing_seeds;
        failing_sync = !failing_sync;
        successful = !successful;
        success_seeds = !success_seeds;
        success_sync = !success_sync;
        runs_needed = !runs_needed;
      }
