let all =
  Sys_mysql.bugs @ Sys_httpd.bugs @ Sys_memcached.bugs @ Sys_sqlite.bugs
  @ Sys_transmission.bugs @ Sys_pbzip2.bugs @ Sys_aget.bugs @ Sys_jdk.bugs
  @ Sys_derby.bugs @ Sys_groovy.bugs @ Sys_dbcp.bugs @ Sys_log4j.bugs
  @ Sys_lucene.bugs

let eval_ids =
  [
    "mysql-1";
    "mysql-4";
    "mysql-7";
    "httpd-1";
    "httpd-3";
    "memcached-2";
    "sqlite-1";
    "sqlite-3";
    "transmission-2";
    "pbzip2-1";
    "aget-1";
  ]

let find id = List.find_opt (fun b -> String.equal b.Bug.id id) all

let find_exn id =
  match find id with
  | Some b -> b
  | None -> raise Not_found

let eval_set = List.map find_exn eval_ids

let by_system system =
  List.filter (fun b -> String.equal b.Bug.system system) all

let systems =
  let rec uniq seen = function
    | [] -> List.rev seen
    | b :: rest ->
      if List.mem b.Bug.system seen then uniq seen rest
      else uniq (b.Bug.system :: seen) rest
  in
  uniq [] all

let by_kind kind = List.filter (fun b -> b.Bug.kind = kind) all
