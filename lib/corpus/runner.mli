(** The client-side experiment harness: runs a corpus bug under the PT
    driver across seeds, captures a failing report when the bug manifests,
    then re-runs with watchpoints at the failure location to collect
    successful-execution traces (Figure 2, step 8). *)

type run = {
  result : Sim.Interp.run_result;
  driver : Pt.Driver.t;
}

val run_traced :
  built:Bug.built ->
  entry:string ->
  seed:int ->
  ?pt_config:Pt.Config.t ->
  ?watch_pcs:int list ->
  ?extra_hooks:Sim.Hooks.t ->
  unit ->
  run
(** One simulated client execution with tracing on. *)

val run_untraced :
  built:Bug.built -> entry:string -> seed:int -> unit -> Sim.Interp.run_result
(** Baseline execution without any tracing cost (for overhead numbers). *)

type sync_profile = {
  sync_ops : int;  (** synchronization operations the run performed *)
  sync_digest : int;
      (** non-negative digest of the last {!sync_window} ops' static
          identities (kind, tid, iid) — the report's recent sync history,
          shipped as wire provenance for Lumos-style feature mining *)
}
(** Captured per kept report by a pure [on_obs] observer, so attaching it
    never changes the schedule being recorded. *)

val sync_window : int

type collected = {
  built : Bug.built;
  failing : Snorlax_core.Report.failing_report list;
  failing_seeds : int list;
  failing_sync : sync_profile list;  (** parallel to [failing] *)
  successful : Snorlax_core.Report.success_report list;
  success_seeds : int list;
  success_sync : sync_profile list;  (** parallel to [successful] *)
  runs_needed : int;  (** executions performed to reproduce the bug *)
}

val watch_pcs_for :
  Lir.Irmod.t -> Snorlax_core.Report.failing_report -> int list
(** The failing pc plus its block's predecessors' entry pcs — the paper's
    fallback when the exact location cannot re-trigger on success. *)

val collect :
  Bug.t ->
  ?pt_config:Pt.Config.t ->
  ?failing_count:int ->
  ?success_per_failing:int ->
  ?max_tries:int ->
  ?seed_base:int ->
  unit ->
  (collected, string) result
(** Reproduce the bug [failing_count] times (default 1) and gather
    [success_per_failing] (default 10, the paper's 10x cap) successful
    traces per failing one.  [Error _] when the bug will not reproduce or
    successful runs cannot be found within [max_tries] seeds. *)
