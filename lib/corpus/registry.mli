(** The full corpus: 54 bugs across 13 systems, mirroring the paper's
    study set (§3.2), and the 11-bug C/C++ subset used for the Snorlax
    end-to-end evaluation (§6). *)

val all : Bug.t list
(** All 54 bugs, grouped by system in the paper's order. *)

val eval_set : Bug.t list
(** The 11 bugs in the C/C++ systems that the evaluation sections (§6.1,
    Table 4, Figure 7) run end-to-end. *)

val find : string -> Bug.t option
(** Lookup by id, e.g. ["mysql-7"]. *)

val find_exn : string -> Bug.t
(** Like {!find} but raises [Not_found]; for fixtures whose ids are
    known-good by construction. *)

val by_system : string -> Bug.t list
val systems : string list
(** System names in corpus order. *)

val by_kind : Bug.kind -> Bug.t list
