(* Encode the 63-bit pattern of [v]; logical shifts make this total even
   when zigzag wraps into the sign bit. *)
let write_raw buf v =
  let rec go v =
    if v land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (v land 0x7f lor 0x80));
      go (v lsr 7)
    end
  in
  go v

let write_unsigned buf v =
  if v < 0 then invalid_arg "Varint.write_unsigned: negative";
  write_raw buf v

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))

let write_signed buf v = write_raw buf (zigzag v)

let read_unsigned b ~pos =
  let len = Bytes.length b in
  let rec go pos shift acc =
    if pos >= len then invalid_arg "Varint.read_unsigned: truncated";
    let c = Char.code (Bytes.get b pos) in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let read_signed b ~pos =
  let v, next = read_unsigned b ~pos in
  (unzigzag v, next)

let try_read_unsigned b ~pos =
  let len = Bytes.length b in
  let rec go pos shift acc =
    if pos >= len then None
    else
      let c = Char.code (Bytes.get b pos) in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then Some (acc, pos + 1)
      else go (pos + 1) (shift + 7) acc
  in
  if pos < 0 then None else go pos 0 0

let try_read_signed b ~pos =
  match try_read_unsigned b ~pos with
  | None -> None
  | Some (v, next) -> Some (unzigzag v, next)

let encoded_size v =
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  if v < 0 then invalid_arg "Varint.encoded_size: negative" else go v 1
