(** A growable flat array: the allocation-lean accumulator the decoder and
    trace processing use instead of [list cons + List.rev + Array.of_list].

    Push is amortized O(1) with doubling growth; the backing store is a
    plain ['a array], so a fully built buffer converts to an array with one
    [Array.sub] and no per-element boxing beyond the elements themselves. *)

type 'a t

val create : unit -> 'a t
(** An empty buffer.  No storage is allocated until the first {!push}, so
    creating one costs two words regardless of element type. *)

val length : 'a t -> int

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] outside [0, length - 1]. *)

val set : 'a t -> int -> 'a -> unit
(** Overwrite an existing element (the decoder's timestamp backfill).
    Raises [Invalid_argument] outside [0, length - 1]. *)

val unsafe_get : 'a t -> int -> 'a
(** [get] without the bound check.  Only for indices already proven in
    range — the decoder's hot loops, where the check was measurable. *)

val unsafe_set : 'a t -> int -> 'a -> unit
(** [set] without the bound check; same contract as {!unsafe_get}. *)

val push4 : 'a t -> 'a -> 'a -> 'a -> 'a -> unit
(** Push four elements with a single growth check: the decoder
    accumulates fixed-stride 4-field records, and per-element checks
    were measurable there. *)

val iter : ('a -> unit) -> 'a t -> unit
(** In push order. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val clear : 'a t -> unit
(** Forgets the elements but keeps the backing store for reuse. *)

val to_array : 'a t -> 'a array
(** A fresh array of exactly [length] elements, in push order. *)
