let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  (* An all-identical population has zero spread by definition, but the
     mean of n copies of x can land a ulp away from x, making the naive
     formula return a tiny nonzero value.  Answer exactly. *)
  | x :: rest when List.for_all (fun y -> y = x) rest -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

(* Geometric mean of the positive samples.  Non-positive inputs (a
   zero-duration measurement, a clock that stepped backwards) have no
   logarithm; they are skipped rather than crashing the caller, and a
   list with no positive sample yields 0.0 like the empty list. *)
let geomean xs =
  match List.filter (fun x -> x > 0.0) xs with
  | [] -> 0.0
  | positives -> exp (mean (List.map log positives))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let percentile xs ~p =
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Stats.percentile: p outside [0,100]";
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
    let n = List.length sorted in
    (* Nearest rank, clamped to [1, n]: ceil maps p = 0 to rank 0, which
       by convention means the minimum (rank 1), not an index underflow. *)
    let rank =
      max 1 (min n (int_of_float (ceil (p /. 100.0 *. float_of_int n))))
    in
    List.nth sorted (rank - 1)

let f1 ~precision ~recall =
  if precision +. recall = 0.0 then 0.0
  else 2.0 *. precision *. recall /. (precision +. recall)

let precision_recall ~true_pos ~false_pos ~false_neg =
  let p =
    if true_pos + false_pos = 0 then 0.0
    else float_of_int true_pos /. float_of_int (true_pos + false_pos)
  and r =
    if true_pos + false_neg = 0 then 0.0
    else float_of_int true_pos /. float_of_int (true_pos + false_neg)
  in
  (p, r)

(* Pairs over the intersection of the two lists; a pair is discordant when
   the two orderings disagree on its relative order. *)
let common_pairs l1 l2 =
  let pos l =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i x -> if not (Hashtbl.mem tbl x) then Hashtbl.add tbl x i) l;
    tbl
  in
  let p1 = pos l1 and p2 = pos l2 in
  let commons = List.filter (Hashtbl.mem p2) (List.sort_uniq compare l1) in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let discordant (x, y) =
    let o1 = compare (Hashtbl.find p1 x) (Hashtbl.find p1 y)
    and o2 = compare (Hashtbl.find p2 x) (Hashtbl.find p2 y) in
    o1 * o2 < 0
  in
  let ps = pairs commons in
  (ps, List.length (List.filter discordant ps))

let kendall_tau_distance l1 l2 = snd (common_pairs l1 l2)

let ordering_accuracy l1 l2 =
  let ps, k = common_pairs l1 l2 in
  match List.length ps with
  | 0 -> 100.0
  | n -> 100.0 *. (1.0 -. (float_of_int k /. float_of_int n))
