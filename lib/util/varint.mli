(** LEB128-style variable-length integer codec.

    Trace packets carry deltas (cycle counts, IP offsets) that are small most
    of the time; a varint encoding keeps the packet stream compact the same
    way Intel PT compresses target IPs and CYC payloads. *)

val write_unsigned : Buffer.t -> int -> unit
(** Encode a non-negative integer.  Raises [Invalid_argument] on negative
    input. *)

val write_signed : Buffer.t -> int -> unit
(** Zig-zag encode a possibly negative integer. *)

val read_unsigned : bytes -> pos:int -> int * int
(** [read_unsigned b ~pos] decodes at [pos] and returns [(value, next_pos)].
    Raises [Invalid_argument] on truncated input. *)

val read_signed : bytes -> pos:int -> int * int
(** Zig-zag decode; same contract as {!read_unsigned}. *)

val try_read_unsigned : bytes -> pos:int -> (int * int) option
(** Total variant of {!read_unsigned}: [None] on truncated input or an
    out-of-range [pos] instead of raising.  Wire-format decoders that must
    never raise on corrupt network bytes build on this. *)

val try_read_signed : bytes -> pos:int -> (int * int) option
(** Total variant of {!read_signed}. *)

val encoded_size : int -> int
(** Bytes {!write_unsigned} would use for this value. *)
