(* The backing array is created by the first push (OCaml arrays need an
   element to exist), then doubled as needed.  Slots past [len] may hold
   stale elements until overwritten; [clear] keeps them on purpose so a
   reused buffer does not reallocate.  That retains references — fine for
   the short-lived decode accumulators this serves. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length b = b.len

let grow b x =
  let cap = max 16 (2 * Array.length b.data) in
  let d = Array.make cap x in
  Array.blit b.data 0 d 0 b.len;
  b.data <- d

let push b x =
  if b.len = Array.length b.data then grow b x;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Dynbuf.get";
  b.data.(i)

let iter f b =
  for i = 0 to b.len - 1 do
    f b.data.(i)
  done

let iteri f b =
  for i = 0 to b.len - 1 do
    f i b.data.(i)
  done

let clear b = b.len <- 0

let to_array b = Array.sub b.data 0 b.len
