(* The backing array is created by the first push (OCaml arrays need an
   element to exist), then doubled as needed.  Slots past [len] may hold
   stale elements until overwritten; [clear] keeps them on purpose so a
   reused buffer does not reallocate.  That retains references — fine for
   the short-lived decode accumulators this serves. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length b = b.len

let grow b x =
  let cap = max 16 (2 * Array.length b.data) in
  let d = Array.make cap x in
  Array.blit b.data 0 d 0 b.len;
  b.data <- d

let push b x =
  if b.len = Array.length b.data then grow b x;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Dynbuf.get";
  b.data.(i)

let set b i x =
  if i < 0 || i >= b.len then invalid_arg "Dynbuf.set";
  b.data.(i) <- x

let unsafe_get b i = Array.unsafe_get b.data i

let unsafe_set b i x = Array.unsafe_set b.data i x

(* One growth check for four elements: the decoder pushes fixed-stride
   records, and per-element bound checks were measurable there. *)
let push4 b x0 x1 x2 x3 =
  let cap = Array.length b.data in
  if b.len + 4 > cap then begin
    let need = b.len + 4 in
    let cap' = ref (max 16 (2 * cap)) in
    while !cap' < need do
      cap' := 2 * !cap'
    done;
    let d = Array.make !cap' x0 in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  let l = b.len in
  Array.unsafe_set b.data l x0;
  Array.unsafe_set b.data (l + 1) x1;
  Array.unsafe_set b.data (l + 2) x2;
  Array.unsafe_set b.data (l + 3) x3;
  b.len <- l + 4

let iter f b =
  for i = 0 to b.len - 1 do
    f b.data.(i)
  done

let iteri f b =
  for i = 0 to b.len - 1 do
    f i b.data.(i)
  done

let clear b = b.len <- 0

let to_array b = Array.sub b.data 0 b.len
