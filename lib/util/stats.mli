(** Descriptive statistics and the metrics used by the paper's evaluation:
    F1 score (§4.5), normalized Kendall-tau ordering accuracy (§6.1), and
    geometric-mean speedups (§6.2). *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val geomean : float list -> float
(** Geometric mean of the positive samples; non-positive inputs (e.g. a
    zero-duration measurement) are skipped, and a list with no positive
    sample — including [] — yields 0. *)

val min_max : float list -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on []. *)

val percentile : float list -> p:float -> float
(** Nearest-rank percentile: the smallest element with at least [p]% of
    the sample at or below it.  [p = 0.] yields the minimum, [p = 100.]
    the maximum, and the result is monotone in [p].  Raises
    [Invalid_argument] on [] or when [p] falls outside [\[0,100\]]. *)

val f1 : precision:float -> recall:float -> float
(** Harmonic mean of precision and recall; 0 when both are 0. *)

val precision_recall :
  true_pos:int -> false_pos:int -> false_neg:int -> float * float
(** Precision and recall from confusion counts (0 when denominators are 0). *)

val kendall_tau_distance : 'a list -> 'a list -> int
(** Number of discordant pairs between two orderings of the same element
    set.  Elements present in only one list are ignored. *)

val ordering_accuracy : 'a list -> 'a list -> float
(** A_O from §6.1: [100 * (1 - K/(number of pairs))] where K is the
    Kendall-tau distance over the union of pairs.  100.0 when fewer than two
    common elements exist. *)
