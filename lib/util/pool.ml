(* One mutex guards everything; [work] wakes workers when a batch (or
   shutdown) arrives, [finished] wakes waiters whenever an item completes.
   Workers pull indices from the batch cursor, so uneven item costs
   balance automatically.  A batch failure cancels the unclaimed rest of
   the cursor: one poisoned item fails the batch fast instead of burning
   the remaining items. *)

type batch = {
  f : int -> unit;
  n : int;
  mutable next : int;  (* first unclaimed index *)
  mutable completed : int;  (* items finished or cancelled *)
  mutable item_done : Bytes.t;  (* per-item completion, for [wait_item] *)
  mutable failure : exn option;  (* first exception, re-raised by [await] *)
}

type handle = batch

type t = {
  size : int;
  m : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable current : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.size

(* Cancel every unclaimed item of [b]; claimed items already in flight on
   other domains still finish.  Called with [t.m] held. *)
let cancel_rest t b =
  let skipped = b.n - b.next in
  if skipped > 0 then begin
    b.next <- b.n;
    b.completed <- b.completed + skipped;
    if b.completed = b.n then Condition.broadcast t.finished
  end

(* Claim and run ONE item of [b].  Called with [t.m] held; holds it again
   on return. *)
let run_one t b =
  let i = b.next in
  b.next <- i + 1;
  Mutex.unlock t.m;
  (match b.f i with
  | () -> Mutex.lock t.m
  | exception e ->
    Mutex.lock t.m;
    if b.failure = None then b.failure <- Some e;
    cancel_rest t b);
  Bytes.unsafe_set b.item_done i '\001';
  b.completed <- b.completed + 1;
  Condition.broadcast t.finished

let work_on t b =
  while b.next < b.n do
    run_one t b
  done

let worker t =
  Mutex.lock t.m;
  let rec loop () =
    if t.stop then Mutex.unlock t.m
    else
      match t.current with
      | Some b when b.next < b.n ->
        work_on t b;
        loop ()
      | Some _ | None ->
        Condition.wait t.work t.m;
        loop ()
  in
  loop ()

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      stop = false;
      domains = [];
    }
  in
  if size > 1 then
    t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t n f =
  let n = max 0 n in
  let b =
    { f; n; next = 0; completed = 0; item_done = Bytes.make (max 1 n) '\000';
      failure = None }
  in
  if n > 0 then begin
    Mutex.lock t.m;
    if t.current <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: a batch is already in flight"
    end;
    t.current <- Some b;
    Condition.broadcast t.work;
    Mutex.unlock t.m
  end;
  b

let wait_item t b i =
  if i < 0 || i >= b.n then invalid_arg "Pool.wait_item: index out of range";
  Mutex.lock t.m;
  let rec loop () =
    if Bytes.unsafe_get b.item_done i = '\001' || b.failure <> None then ()
    else if b.next < b.n then begin
      (* Help: run an item instead of blocking, so a waiting submitter is
         a full participant while its target is still queued. *)
      run_one t b;
      loop ()
    end
    else begin
      Condition.wait t.finished t.m;
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.m

let await t b =
  Mutex.lock t.m;
  while b.completed < b.n do
    if b.next < b.n then run_one t b else Condition.wait t.finished t.m
  done;
  (match t.current with
  | Some cur when cur == b -> t.current <- None
  | Some _ | None -> ());
  Mutex.unlock t.m;
  match b.failure with Some e -> raise e | None -> ()

let run_inline n f =
  let failure = ref None in
  (try
     for i = 0 to n - 1 do
       f i
     done
   with e -> failure := Some e);
  match !failure with Some e -> raise e | None -> ()

let run t n f =
  if n > 0 then
    if t.domains = [] then run_inline n f
    else begin
      let b = submit t n f in
      await t b
    end

let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run t n (fun i -> results.(i) <- Some (f i arr.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

(* --- cost-balanced chunking ---------------------------------------------- *)

let balanced_chunks ~weights ~chunks =
  let n = Array.length weights in
  let k = max 1 (min chunks n) in
  if n = 0 then [||]
  else begin
    (* Greedy LPT: place items heaviest-first onto the least-loaded chunk.
       Deterministic: ties break toward the lower index / lower chunk. *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare weights.(b) weights.(a) with
        | 0 -> compare a b
        | c -> c)
      order;
    let loads = Array.make k 0 in
    let members = Array.make k [] in
    Array.iter
      (fun i ->
        let best = ref 0 in
        for c = 1 to k - 1 do
          if loads.(c) < loads.(!best) then best := c
        done;
        loads.(!best) <- loads.(!best) + weights.(i);
        members.(!best) <- i :: members.(!best))
      order;
    (* Drop empty chunks (possible when many zero weights collapse). *)
    Array.of_list
      (List.filter_map
         (fun l -> if l = [] then None else Some (Array.of_list (List.rev l)))
         (Array.to_list members))
  end

(* --- scoped dedicated pools ---------------------------------------------- *)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- process-wide default and shared pool -------------------------------- *)

let default = Atomic.make (Domain.recommended_domain_count ())

(* Per-domain override of the process default: a sweep or shard worker
   that is itself one lane of a fan-out wraps its work in
   [with_default_jobs 1], and every nested [process ?jobs:None] call it
   makes resolves to sequential decode instead of fighting over (or
   double-submitting into) the shared pool from multiple domains. *)
let override : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let default_jobs () =
  match !(Domain.DLS.get override) with
  | Some n -> n
  | None -> Atomic.get default

let set_default_jobs n = Atomic.set default (max 1 n)

let with_default_jobs n f =
  let slot = Domain.DLS.get override in
  let prev = !slot in
  slot := Some (max 1 n);
  Fun.protect ~finally:(fun () -> slot := prev) f

(* Only the main domain mutates [shared] (worker domains run under
   [with_default_jobs 1] and the sequential decode path never calls
   [get]), so a plain ref suffices. *)
let shared : t option ref = ref None

(* A size-1 pool runs everything inline on the submitting domain; one
   cached instance serves every [get ~jobs:1] so sequential requests never
   borrow the (larger, parallel) shared pool by accident.  Eager, not
   lazy: [Lazy.force] is not domain-safe, and [get ~jobs:1] must be
   callable from any worker domain.  The instance spawns no domains and
   holds no batch state on the inline path, so sharing it is free. *)
let inline_pool = create ~jobs:1

let at_exit_registered = ref false

let get ~jobs =
  let jobs = max 1 jobs in
  if jobs = 1 then inline_pool
  else
    match !shared with
    | Some p when p.size >= jobs && p.stop = false -> p
    | prev ->
      Option.iter shutdown prev;
      let p = create ~jobs in
      shared := Some p;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit (fun () -> Option.iter shutdown !shared)
      end;
      p
