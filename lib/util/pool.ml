(* One mutex guards everything; [work] wakes workers when a batch (or
   shutdown) arrives, [finished] wakes the submitter when the last item
   completes.  Workers pull indices from the batch cursor, so uneven item
   costs balance automatically. *)

type batch = {
  f : int -> unit;
  n : int;
  mutable next : int;  (* first unclaimed index *)
  mutable completed : int;
  mutable failure : exn option;  (* first exception, re-raised by [run] *)
}

type t = {
  size : int;
  m : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable current : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.size

(* Claim and run items of [b] until its cursor is exhausted.  Called with
   [t.m] held; holds it again on return. *)
let work_on t b =
  while b.next < b.n do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock t.m;
    (match b.f i with
    | () -> Mutex.lock t.m
    | exception e ->
      Mutex.lock t.m;
      if b.failure = None then b.failure <- Some e);
    b.completed <- b.completed + 1;
    if b.completed = b.n then Condition.broadcast t.finished
  done

let worker t =
  Mutex.lock t.m;
  let rec loop () =
    if t.stop then Mutex.unlock t.m
    else
      match t.current with
      | Some b when b.next < b.n ->
        work_on t b;
        loop ()
      | Some _ | None ->
        Condition.wait t.work t.m;
        loop ()
  in
  loop ()

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      stop = false;
      domains = [];
    }
  in
  if size > 1 then
    t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let run_inline n f =
  let failure = ref None in
  for i = 0 to n - 1 do
    match f i with
    | () -> ()
    | exception e -> if !failure = None then failure := Some e
  done;
  match !failure with Some e -> raise e | None -> ()

let run t n f =
  if n > 0 then
    if t.domains = [] then run_inline n f
    else begin
      Mutex.lock t.m;
      let b = { f; n; next = 0; completed = 0; failure = None } in
      t.current <- Some b;
      Condition.broadcast t.work;
      work_on t b;
      while b.completed < b.n do
        Condition.wait t.finished t.m
      done;
      t.current <- None;
      Mutex.unlock t.m;
      match b.failure with Some e -> raise e | None -> ()
    end

let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run t n (fun i -> results.(i) <- Some (f i arr.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

(* --- process-wide default and shared pool -------------------------------- *)

let default = ref (Domain.recommended_domain_count ())

let default_jobs () = !default

let set_default_jobs n = default := max 1 n

let shared : t option ref = ref None

let at_exit_registered = ref false

let get ~jobs =
  let jobs = max 1 jobs in
  match !shared with
  | Some p when p.size >= jobs && p.stop = false -> p
  | prev ->
    Option.iter shutdown prev;
    let p = create ~jobs in
    shared := Some p;
    if not !at_exit_registered then begin
      at_exit_registered := true;
      at_exit (fun () -> Option.iter shutdown !shared)
    end;
    p
