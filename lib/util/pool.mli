(** A small reusable domain pool (OCaml 5 [Domain]/[Mutex]/[Condition])
    for embarrassingly parallel batches — per-thread trace decodes being
    the motivating case: every [(tid, snapshot)] pair decodes
    independently, so the server can fan them across cores and merge in
    input order.

    A pool of size [n] runs batches on [n] domains: [n - 1] spawned
    workers plus the submitting domain, which participates instead of
    blocking.  Size [<= 1] spawns nothing and every batch runs inline —
    the sequential fallback.  Batches hand out indices from a shared
    cursor under a mutex; items may complete in any order, but callers
    that write result [i] into slot [i] (as {!map} does) get output
    identical to a sequential run.

    Batch functions must not touch domain-unsafe global state (the
    ambient {!Obs} scope included) — record telemetry on the submitting
    domain after the batch returns. *)

type t

val create : jobs:int -> t
(** A pool running batches on [max 1 jobs] domains. *)

val jobs : t -> int

val run : t -> int -> (int -> unit) -> unit
(** [run t n f] evaluates [f i] for every [i] in [0, n - 1], spread over
    the pool's domains; returns when all are done.  If any [f i] raised,
    one such exception is re-raised after the batch completes (remaining
    items still run).  Batches do not nest: [f] must not call {!run} on
    any pool. *)

val map : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.mapi]: output order matches input order regardless of
    pool size or scheduling. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool then runs
    batches inline. *)

val default_jobs : unit -> int
(** The process-wide default parallelism: initially
    [Domain.recommended_domain_count ()], overridable with
    {!set_default_jobs} (e.g. from a [--decode-jobs] flag). *)

val set_default_jobs : int -> unit
(** Clamped below at 1. *)

val get : jobs:int -> t
(** The shared process-wide pool, (re)created on demand.  It only ever
    grows: asking for fewer jobs than the current pool has reuses the
    bigger pool (idle workers are harmless), asking for more replaces it.
    The shared pool is shut down automatically at exit. *)
