(** A small reusable domain pool (OCaml 5 [Domain]/[Mutex]/[Condition])
    for embarrassingly parallel batches — per-thread trace decodes being
    the motivating case: every [(tid, snapshot)] pair decodes
    independently, so the server can fan them across cores and merge in
    input order.

    A pool of size [n] runs batches on [n] domains: [n - 1] spawned
    workers plus the submitting domain, which participates instead of
    blocking.  Size [<= 1] spawns nothing and every batch runs inline —
    the sequential fallback.  Batches hand out indices from a shared
    cursor under a mutex; items may complete in any order, but callers
    that write result [i] into slot [i] (as {!map} does) get output
    identical to a sequential run.

    Batches fail fast: the first item that raises cancels every item not
    yet claimed (items already running on other domains still finish),
    and the exception is re-raised by {!run}/{!await}.

    Batch functions must not touch domain-unsafe global state — record
    telemetry into a chunk-private {!Obs.Metrics} registry (or a private
    scope installed with [Obs.Scope.using]) and fold it back on the
    submitting domain after the batch returns. *)

type t

val create : jobs:int -> t
(** A pool running batches on [max 1 jobs] domains. *)

val jobs : t -> int

val run : t -> int -> (int -> unit) -> unit
(** [run t n f] evaluates [f i] for every [i] in [0, n - 1], spread over
    the pool's domains; returns when all are done.  If any [f i] raised,
    the remaining unclaimed items are cancelled and one such exception is
    re-raised.  Batches do not nest: [f] must not call {!run} (or
    {!submit}) on any pool. *)

val map : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.mapi]: output order matches input order regardless of
    pool size or scheduling. *)

(** {2 Asynchronous batches}

    [submit] starts a batch on the worker domains and returns
    immediately, so the submitting domain can consume completed items —
    e.g. merge decode results in input order — while the rest are still
    in flight.  At most one batch per pool may be in flight at a time. *)

type handle

val submit : t -> int -> (int -> unit) -> handle
(** Enqueue a batch of [n] items and return without running any of them
    on the calling domain (a size-1 pool runs them lazily inside
    {!wait_item}/{!await} instead).  Raises [Invalid_argument] if a batch
    is already in flight on this pool. *)

val wait_item : t -> handle -> int -> unit
(** Block until item [i] of the batch has completed (or the batch
    failed).  While waiting, the calling domain claims and runs queued
    items itself, so waiting overlaps with useful work rather than
    idling.  Completion of [i] does not imply success of the whole batch
    — check via {!await}. *)

val await : t -> handle -> unit
(** Block (helping, like {!wait_item}) until every item has completed or
    been cancelled, then re-raise the first failure if any.  Must be
    called exactly once per {!submit} to release the pool for the next
    batch. *)

val balanced_chunks : weights:int array -> chunks:int -> int array array
(** [balanced_chunks ~weights ~chunks] partitions the indices
    [0 .. length weights - 1] into at most [chunks] groups with
    approximately equal total weight (greedy LPT: heaviest first onto the
    least-loaded chunk).  Deterministic; every index appears in exactly
    one chunk; no chunk is empty.  Used to turn many small uneven decode
    tasks into a few cost-balanced pool items. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool then runs
    batches inline. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a dedicated pool and tears it down
    (joining its domains) when [f] returns or raises.  Use this for
    scoped fan-outs — corpus sweeps, benchmarks — that should not grow or
    occupy the process-wide {!get} pool; the dedicated pool never touches
    the shared slot. *)

val default_jobs : unit -> int
(** The default parallelism: the calling domain's {!with_default_jobs}
    override when one is active, else the process-wide default —
    initially [Domain.recommended_domain_count ()], overridable with
    {!set_default_jobs} (e.g. from a [--decode-jobs] flag). *)

val set_default_jobs : int -> unit
(** Clamped below at 1. *)

val with_default_jobs : int -> (unit -> 'a) -> 'a
(** Run [f] with {!default_jobs} pinned to [max 1 n] {e on the calling
    domain only}, restoring the previous override afterwards.  Sweep and
    shard workers wrap their work in [with_default_jobs 1] so nested
    decode/diagnosis stays sequential inside each lane instead of
    contending for the shared pool from multiple domains. *)

val get : jobs:int -> t
(** The shared process-wide pool, (re)created on demand.  [~jobs:1]
    honors the request exactly: it returns a dedicated inline pool that
    runs batches sequentially on the calling domain, even when a larger
    shared pool exists — sequential baselines must never silently run
    parallel.  For [jobs > 1] the shared pool only ever grows: asking for
    fewer jobs than the current pool has reuses the bigger pool (idle
    workers are harmless), asking for more replaces it.  The shared pool
    is shut down automatically at exit. *)
