type plan = { slice : int list; windows : int list list }

let plan m ~points_to ~failing_iid =
  let with_depths =
    Analysis.Slice.backward_slice_depths m ~points_to ~from_iid:failing_iid
  in
  let max_depth =
    List.fold_left (fun acc (_, d) -> max acc d) 0 with_depths
  in
  let windows =
    List.init (max_depth + 1) (fun d ->
        List.filter_map
          (fun (iid, depth) -> if depth = d then Some iid else None)
          with_depths)
  in
  { slice = List.map fst with_depths; windows }

let monitored_after p ~recurrences =
  let rec take n = function
    | [] -> []
    | w :: rest -> if n = 0 then [] else w :: take (n - 1) rest
  in
  List.concat (take recurrences p.windows)

let recurrences_needed p ~targets =
  let rec search k =
    if k > List.length p.windows then
      (* Targets outside the static slice: Gist keeps widening and never
         converges; report one beyond the last window as a floor. *)
      List.length p.windows + 1
    else
      let monitored = monitored_after p ~recurrences:k in
      if List.for_all (fun t -> List.mem t monitored) targets then k
      else search (k + 1)
  in
  search 1

type cost_model = { per_event_ns : float; contention_ns : float }

(* Calibrated so that a branch-dense workload lands near the paper's
   3.14% (2 threads) to 38.9% (32 threads) range. *)
let default_costs = { per_event_ns = 0.35; contention_ns = 0.21 }

let instrument_hooks ~monitored ~threads ~costs =
  let cost ~tid:_ ~time:_ (i : Lir.Instr.t) =
    if Lir.Instr.is_memory_access i && monitored i.Lir.Instr.iid then
      costs.per_event_ns
      +. (costs.contention_ns *. float_of_int (max 0 (threads - 1)))
    else 0.0
  in
  { Sim.Hooks.none with on_instr = Some cost }

let latency_factor_vs_snorlax ~recurrences ~tracked_bugs =
  float_of_int recurrences *. float_of_int tracked_bugs
