(** Server-side trace decoder (the analogue of Intel's reference decoder
    plus the binary-to-IR mapping of §5).

    Given the module (the "binary") and one thread's ring-buffer snapshot,
    the decoder re-synchronizes at the first PSB, replays control flow by
    walking the CFG — consuming a TNT bit at every conditional branch and a
    TIP at every return — and assigns every replayed instruction a coarse
    time interval [t_lo, t_hi] bounded by the timing packets around it.
    Those intervals are exactly the partial order of §4.1 (step 3).

    Two interchangeable implementations share the {!result} contract.
    {!decode_raw} is the production path: an allocation-free
    {!Packet.Cursor} feeds a walker that resolves control flow through a
    pc-indexed table precomputed per module layout, accumulating steps in
    a per-domain arena reused across the decodes of a batch.
    {!decode_reference} is the frozen v1 list pipeline, kept as the
    benchmark's sequential baseline and the differential-testing oracle:
    on any input — the full corpus, corrupt rings — the two must return
    bit-identical results. *)

type step = {
  pc : int;
  iid : int;
  t_lo : int;  (** ns; the instruction executed no earlier than this *)
  t_hi : int option;
      (** ns; and no later than this.  [None] is an open upper bound: the
          ring ended before any later timing packet, so window arithmetic
          like [t_hi - t_lo] never has to touch a sentinel value. *)
}

type result = {
  steps : step array;  (** oldest first; treat as immutable — cached
                           results are shared between decode consumers *)
  lost_bytes : int;  (** bytes before the first PSB (overwritten history) *)
  desynced : bool;
      (** true when replay hit control flow the packet stream cannot
          resolve (e.g. a branch whose TNT was overwritten) *)
  thread_ended : bool;
      (** true when the stream ends with the thread's exit (a TIP.END
          consumed at a return): the trace is complete, not cut by the
          ring.  Previously this signal was decoded and then dropped. *)
}

val decode :
  Lir.Irmod.t -> config:Config.t -> ?tail_stop:int * int -> bytes -> result
(** [decode m ~config snapshot] replays one thread's snapshot.
    [?tail_stop:(pc, t_hi)] continues replay past the last packet along
    branch-free code until [pc] (the failing instruction, whose time is
    known from the failure report) — the paper's crash pc binding.
    Records pt/* telemetry into the ambient {!Obs.Scope}. *)

val decode_raw :
  Lir.Irmod.t -> config:Config.t -> ?tail_stop:int * int -> bytes -> result
(** Exactly {!decode} minus the telemetry.  The ambient scope is not
    domain-safe, so parallel decode fans this across a
    {!Snorlax_util.Pool} and the submitting domain records metrics per
    result afterwards with {!record_metrics}. *)

val decode_reference :
  Lir.Irmod.t -> config:Config.t -> ?tail_stop:int * int -> bytes -> result
(** The frozen v1 pipeline ([Packet.decode_stream] → two-pass
    timestamping → hashtable-lookup walker), extended only to expand
    {!Packet.Tnt_packed} runs into per-bit TNT before timestamping.
    Same contract as {!decode_raw}; exists for benchmarking (the
    sequential cold baseline) and differential tests. *)

val prepare : Lir.Irmod.t -> unit
(** Lay the module out and build the decoder's pc-indexed walk table
    eagerly.  Called from the submitting domain before fanning a batch
    across a pool so worker domains only read the shared cache. *)

val record_metrics : ?into:Obs.Metrics.t -> result -> snapshot_bytes:int -> unit
(** Record one decode's pt/* counters (calls, steps, lost bytes, desyncs,
    thread exits, snapshot size).  Without [into], records into the
    ambient scope (no-op when disabled).  With [into], records into that
    registry directly — a pool worker's private registry, later folded
    back with {!Obs.Scope.merge_worker}. *)
