type timing_mode =
  | Cyc_and_mtc of { mtc_period_ns : int }
  | Mtc_only of { mtc_period_ns : int }
  | No_timing

type cost_model = {
  per_event_ns : float;
  per_byte_ns : float;
  per_thread_ns : float;
}

type t = {
  buffer_size : int;
  timing : timing_mode;
  psb_period_bytes : int;
  costs : cost_model;
}

let default_costs = { per_event_ns = 0.18; per_byte_ns = 0.035; per_thread_ns = 0.02 }

let default =
  {
    buffer_size = 64 * 1024;
    timing = Cyc_and_mtc { mtc_period_ns = 1024 };
    psb_period_bytes = 4 * 1024;
    costs = default_costs;
  }

let timing_code = function
  | Cyc_and_mtc { mtc_period_ns } -> (0, mtc_period_ns)
  | Mtc_only { mtc_period_ns } -> (1, mtc_period_ns)
  | No_timing -> (2, 0)

let timing_of_code ~tag ~period =
  match tag with
  | 0 when period > 0 -> Some (Cyc_and_mtc { mtc_period_ns = period })
  | 1 when period > 0 -> Some (Mtc_only { mtc_period_ns = period })
  | 2 -> Some No_timing
  | _ -> None
