module Varint = Snorlax_util.Varint

type t =
  | Psb of { tsc : int }
  | Fup of { pc : int }
  | Tip of { pc : int }
  | Tip_end
  | Tnt of bool
  | Tnt_packed of { bits : int; count : int }
  | Mtc of { ctc : int }
  | Tma of { tsc : int }
  | Cyc of { delta : int }

let hdr_psb = 0x02
let psb_magic = 0x82
let hdr_fup = 0x03
let hdr_tip = 0x04
let hdr_tip_end = 0x05
let hdr_tnt = 0x06
let hdr_mtc = 0x07
let hdr_tma = 0x08
let hdr_cyc = 0x09
let hdr_tnt_packed = 0x0a

(* 48 branch bits + 6 count bits = 54 payload bits, comfortably inside
   the varint codec's 63-bit range. *)
let tnt_max_bits = 48

let encode buf p =
  let byte b = Buffer.add_char buf (Char.chr (b land 0xff)) in
  match p with
  | Psb { tsc } ->
    byte hdr_psb;
    byte psb_magic;
    Varint.write_unsigned buf tsc
  | Fup { pc } ->
    byte hdr_fup;
    Varint.write_unsigned buf pc
  | Tip { pc } ->
    byte hdr_tip;
    Varint.write_unsigned buf pc
  | Tip_end -> byte hdr_tip_end
  | Tnt taken ->
    byte hdr_tnt;
    byte (if taken then 1 else 0)
  | Tnt_packed { bits; count } ->
    if count < 1 || count > tnt_max_bits then
      invalid_arg "Packet.encode: TNT count out of range";
    byte hdr_tnt_packed;
    (* One varint payload, like TIP/CYC, so the PSB framing argument
       (a terminal varint byte is always followed by a header < 0x20)
       holds unchanged.  Low 6 bits carry [count - 1]; branch bits are
       above, first branch in the least significant position. *)
    let bits = bits land ((1 lsl count) - 1) in
    Varint.write_unsigned buf ((bits lsl 6) lor (count - 1))
  | Mtc { ctc } ->
    byte hdr_mtc;
    byte (ctc land 0xff)
  | Tma { tsc } ->
    byte hdr_tma;
    Varint.write_unsigned buf tsc
  | Cyc { delta } ->
    byte hdr_cyc;
    Varint.write_unsigned buf delta

let decode_one b pos =
  let len = Bytes.length b in
  let u8 p = Char.code (Bytes.get b p) in
  if pos >= len then None
  else
    let hdr = u8 pos in
    (* A varint or raw payload that runs past the end of the snapshot means
       the packet was cut by the snapshot boundary; drop it. *)
    let varint p =
      match Varint.read_unsigned b ~pos:p with
      | v -> Some v
      | exception Invalid_argument _ -> None
    in
    if hdr = hdr_psb then
      if pos + 1 >= len then None
      else if u8 (pos + 1) <> psb_magic then
        invalid_arg "Packet.decode: bad PSB magic"
      else
        match varint (pos + 2) with
        | None -> None
        | Some (tsc, next) -> Some (Psb { tsc }, next)
    else if hdr = hdr_fup then
      match varint (pos + 1) with
      | None -> None
      | Some (pc, next) -> Some (Fup { pc }, next)
    else if hdr = hdr_tip then
      match varint (pos + 1) with
      | None -> None
      | Some (pc, next) -> Some (Tip { pc }, next)
    else if hdr = hdr_tip_end then Some (Tip_end, pos + 1)
    else if hdr = hdr_tnt then
      if pos + 1 >= len then None else Some (Tnt (u8 (pos + 1) <> 0), pos + 2)
    else if hdr = hdr_tnt_packed then
      match varint (pos + 1) with
      | None -> None
      | Some (v, next) ->
        (* Corrupt payloads can carry any 6-bit count; the walker simply
           consumes that many bits (zeros past bit 57), so decoding stays
           total and both decoder implementations agree. *)
        Some (Tnt_packed { bits = v lsr 6; count = (v land 0x3f) + 1 }, next)
    else if hdr = hdr_mtc then
      if pos + 1 >= len then None else Some (Mtc { ctc = u8 (pos + 1) }, pos + 2)
    else if hdr = hdr_tma then
      match varint (pos + 1) with
      | None -> None
      | Some (tsc, next) -> Some (Tma { tsc }, next)
    else if hdr = hdr_cyc then
      match varint (pos + 1) with
      | None -> None
      | Some (delta, next) -> Some (Cyc { delta }, next)
    else invalid_arg (Printf.sprintf "Packet.decode: bad header 0x%x" hdr)

let scan_psb_from b pos =
  let len = Bytes.length b in
  let rec go p =
    if p + 1 >= len then None
    else if
      Char.code (Bytes.get b p) = hdr_psb
      && Char.code (Bytes.get b (p + 1)) = psb_magic
    then Some p
    else go (p + 1)
  in
  go pos

let scan_psb b ~pos = scan_psb_from b pos

let decode_stream b ~pos =
  let rec go pos acc =
    match decode_one b pos with
    | None -> List.rev acc
    | Some (p, next) -> go next ((p, pos) :: acc)
    | exception Invalid_argument _ -> (
      (* Corrupted byte where a header should be.  Ring bytes are
         untrusted in-production input, so skip forward to the next PSB
         and resume there rather than raising. *)
      match scan_psb_from b (pos + 1) with
      | Some next -> go next acc
      | None -> List.rev acc)
  in
  go pos []

(* --- zero-allocation cursor ---------------------------------------------- *)

module Cursor = struct
  type kind =
    | Eof
    | Psb
    | Fup
    | Tip
    | Tip_end
    | Tnt
    | Mtc
    | Tma
    | Cyc

  type t = {
    buf : bytes;
    len : int;
    mutable pos : int;
    mutable kind : kind;
    mutable value : int;
    mutable count : int;
  }

  let make buf ~pos =
    { buf; len = Bytes.length buf; pos; kind = Eof; value = 0; count = 0 }

  (* Inline LEB128 read, result via [c.value]; -1 = truncated.  Top
     level (not a local closure of [advance]) so stepping allocates
     nothing. *)
  let varint_from c p =
    let b = c.buf in
    let rec go p shift acc =
      if p >= c.len then -1
      else
        let byte = Char.code (Bytes.unsafe_get b p) in
        let acc = acc lor ((byte land 0x7f) lsl shift) in
        if byte land 0x80 = 0 then begin
          c.value <- acc;
          p + 1
        end
        else go (p + 1) (shift + 7) acc
    in
    go p 0 0

  let[@inline] with_varint c k p =
    match varint_from c p with
    | -1 -> c.kind <- Eof
    | next ->
      c.kind <- k;
      c.pos <- next

  (* Same per-packet semantics as {!decode_stream}: a truncated packet
     ends the stream, a corrupt header resynchronizes at the next PSB. *)
  let rec advance c =
    if c.pos >= c.len then c.kind <- Eof
    else begin
      let b = c.buf in
      let hdr = Char.code (Bytes.unsafe_get b c.pos) in
      if hdr = hdr_psb then
        if c.pos + 1 >= c.len then c.kind <- Eof
        else if Char.code (Bytes.unsafe_get b (c.pos + 1)) <> psb_magic then
          resync c
        else with_varint c Psb (c.pos + 2)
      else if hdr = hdr_fup then with_varint c Fup (c.pos + 1)
      else if hdr = hdr_tip then with_varint c Tip (c.pos + 1)
      else if hdr = hdr_tip_end then begin
        c.kind <- Tip_end;
        c.pos <- c.pos + 1
      end
      else if hdr = hdr_tnt then
        if c.pos + 1 >= c.len then c.kind <- Eof
        else begin
          c.kind <- Tnt;
          c.value <- (if Char.code (Bytes.unsafe_get b (c.pos + 1)) <> 0 then 1 else 0);
          c.count <- 1;
          c.pos <- c.pos + 2
        end
      else if hdr = hdr_tnt_packed then begin
        match varint_from c (c.pos + 1) with
        | -1 -> c.kind <- Eof
        | next ->
          c.kind <- Tnt;
          c.count <- (c.value land 0x3f) + 1;
          c.value <- c.value lsr 6;
          c.pos <- next
      end
      else if hdr = hdr_mtc then
        if c.pos + 1 >= c.len then c.kind <- Eof
        else begin
          c.kind <- Mtc;
          c.value <- Char.code (Bytes.unsafe_get b (c.pos + 1));
          c.pos <- c.pos + 2
        end
      else if hdr = hdr_tma then with_varint c Tma (c.pos + 1)
      else if hdr = hdr_cyc then with_varint c Cyc (c.pos + 1)
      else resync c
    end

  and resync c =
    match scan_psb_from c.buf (c.pos + 1) with
    | Some p ->
      c.pos <- p;
      advance c
    | None -> c.kind <- Eof
end

let to_string = function
  | Psb { tsc } -> Printf.sprintf "PSB tsc=%d" tsc
  | Fup { pc } -> Printf.sprintf "FUP pc=0x%x" pc
  | Tip { pc } -> Printf.sprintf "TIP pc=0x%x" pc
  | Tip_end -> "TIP.END"
  | Tnt taken -> Printf.sprintf "TNT %c" (if taken then 'T' else 'N')
  | Tnt_packed { bits; count } ->
    let s =
      String.init count (fun i ->
          if (bits lsr i) land 1 = 1 then 'T' else 'N')
    in
    Printf.sprintf "TNT.P %s" s
  | Mtc { ctc } -> Printf.sprintf "MTC ctc=%d" ctc
  | Tma { tsc } -> Printf.sprintf "TMA tsc=%d" tsc
  | Cyc { delta } -> Printf.sprintf "CYC +%d" delta
