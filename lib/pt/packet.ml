module Varint = Snorlax_util.Varint

type t =
  | Psb of { tsc : int }
  | Fup of { pc : int }
  | Tip of { pc : int }
  | Tip_end
  | Tnt of bool
  | Mtc of { ctc : int }
  | Tma of { tsc : int }
  | Cyc of { delta : int }

let hdr_psb = 0x02
let psb_magic = 0x82
let hdr_fup = 0x03
let hdr_tip = 0x04
let hdr_tip_end = 0x05
let hdr_tnt = 0x06
let hdr_mtc = 0x07
let hdr_tma = 0x08
let hdr_cyc = 0x09

let encode buf p =
  let byte b = Buffer.add_char buf (Char.chr (b land 0xff)) in
  match p with
  | Psb { tsc } ->
    byte hdr_psb;
    byte psb_magic;
    Varint.write_unsigned buf tsc
  | Fup { pc } ->
    byte hdr_fup;
    Varint.write_unsigned buf pc
  | Tip { pc } ->
    byte hdr_tip;
    Varint.write_unsigned buf pc
  | Tip_end -> byte hdr_tip_end
  | Tnt taken ->
    byte hdr_tnt;
    byte (if taken then 1 else 0)
  | Mtc { ctc } ->
    byte hdr_mtc;
    byte (ctc land 0xff)
  | Tma { tsc } ->
    byte hdr_tma;
    Varint.write_unsigned buf tsc
  | Cyc { delta } ->
    byte hdr_cyc;
    Varint.write_unsigned buf delta

let decode_one b pos =
  let len = Bytes.length b in
  let u8 p = Char.code (Bytes.get b p) in
  if pos >= len then None
  else
    let hdr = u8 pos in
    (* A varint or raw payload that runs past the end of the snapshot means
       the packet was cut by the snapshot boundary; drop it. *)
    let varint p =
      match Varint.read_unsigned b ~pos:p with
      | v -> Some v
      | exception Invalid_argument _ -> None
    in
    if hdr = hdr_psb then
      if pos + 1 >= len then None
      else if u8 (pos + 1) <> psb_magic then
        invalid_arg "Packet.decode: bad PSB magic"
      else
        match varint (pos + 2) with
        | None -> None
        | Some (tsc, next) -> Some (Psb { tsc }, next)
    else if hdr = hdr_fup then
      match varint (pos + 1) with
      | None -> None
      | Some (pc, next) -> Some (Fup { pc }, next)
    else if hdr = hdr_tip then
      match varint (pos + 1) with
      | None -> None
      | Some (pc, next) -> Some (Tip { pc }, next)
    else if hdr = hdr_tip_end then Some (Tip_end, pos + 1)
    else if hdr = hdr_tnt then
      if pos + 1 >= len then None else Some (Tnt (u8 (pos + 1) <> 0), pos + 2)
    else if hdr = hdr_mtc then
      if pos + 1 >= len then None else Some (Mtc { ctc = u8 (pos + 1) }, pos + 2)
    else if hdr = hdr_tma then
      match varint (pos + 1) with
      | None -> None
      | Some (tsc, next) -> Some (Tma { tsc }, next)
    else if hdr = hdr_cyc then
      match varint (pos + 1) with
      | None -> None
      | Some (delta, next) -> Some (Cyc { delta }, next)
    else invalid_arg (Printf.sprintf "Packet.decode: bad header 0x%x" hdr)

let scan_psb_from b pos =
  let len = Bytes.length b in
  let rec go p =
    if p + 1 >= len then None
    else if
      Char.code (Bytes.get b p) = hdr_psb
      && Char.code (Bytes.get b (p + 1)) = psb_magic
    then Some p
    else go (p + 1)
  in
  go pos

let scan_psb b ~pos = scan_psb_from b pos

let decode_stream b ~pos =
  let rec go pos acc =
    match decode_one b pos with
    | None -> List.rev acc
    | Some (p, next) -> go next ((p, pos) :: acc)
    | exception Invalid_argument _ -> (
      (* Corrupted byte where a header should be.  Ring bytes are
         untrusted in-production input, so skip forward to the next PSB
         and resume there rather than raising. *)
      match scan_psb_from b (pos + 1) with
      | Some next -> go next acc
      | None -> List.rev acc)
  in
  go pos []

let to_string = function
  | Psb { tsc } -> Printf.sprintf "PSB tsc=%d" tsc
  | Fup { pc } -> Printf.sprintf "FUP pc=0x%x" pc
  | Tip { pc } -> Printf.sprintf "TIP pc=0x%x" pc
  | Tip_end -> "TIP.END"
  | Tnt taken -> Printf.sprintf "TNT %c" (if taken then 'T' else 'N')
  | Mtc { ctc } -> Printf.sprintf "MTC ctc=%d" ctc
  | Tma { tsc } -> Printf.sprintf "TMA tsc=%d" tsc
  | Cyc { delta } -> Printf.sprintf "CYC +%d" delta
