type snapshot = {
  traces : (int * bytes) list;
  at_time_ns : float;
  trigger_pc : int option;
  trigger_tid : int option;
}

type t = {
  tracer : Tracer.t;
  mutable watch_pcs : int list; (* head = primary (the failure pc) *)
  mutable watch_hit : snapshot option;
  mutable primary_hit : bool;
}

let create ?(config = Config.default) () =
  {
    tracer = Tracer.create ~config;
    watch_pcs = [];
    watch_hit = None;
    primary_hit = false;
  }

let set_watchpoints t ~pcs = t.watch_pcs <- pcs

let snapshot_now t ~at_time_ns =
  {
    traces = Tracer.snapshot t.tracer;
    at_time_ns;
    trigger_pc = None;
    trigger_tid = None;
  }

(* The head watchpoint (the failure pc itself) wins over the fallback
   (predecessor-block) pcs, and later hits replace earlier ones: the
   snapshot that survives is the one with the longest history, ending at
   the last time the successful execution passed the failure location. *)
let on_instr t ~tid ~time (i : Lir.Instr.t) =
  (match t.watch_pcs with
  | [] -> ()
  | primary :: fallbacks ->
    let snap () =
      Some
        {
          traces = Tracer.snapshot t.tracer;
          at_time_ns = time;
          trigger_pc = Some i.Lir.Instr.pc;
          trigger_tid = Some tid;
        }
    in
    if i.Lir.Instr.pc = primary then begin
      t.watch_hit <- snap ();
      t.primary_hit <- true
    end
    else if (not t.primary_hit) && List.mem i.Lir.Instr.pc fallbacks then
      t.watch_hit <- snap ());
  0.0

let hooks t =
  {
    Sim.Hooks.none with
    on_control = Some (fun ~time e -> Tracer.on_control t.tracer ~time e);
    on_instr = Some (fun ~tid ~time i -> on_instr t ~tid ~time i);
  }

let watch_snapshot t = t.watch_hit
let tracer t = t.tracer
