(** Tracer configuration, mirroring the knobs of the paper's PT driver:
    per-thread ring-buffer size (64 KB default, up to 128 MB), timing-packet
    frequency, and PSB sync cadence.  The cost model parameters feed the
    virtual-time overhead the tracer charges the traced program. *)

type timing_mode =
  | Cyc_and_mtc of { mtc_period_ns : int }
      (** CYC before every control packet plus periodic MTC — the paper's
          "highest possible frequency" setting *)
  | Mtc_only of { mtc_period_ns : int }
      (** coarse timing only; used by the timing-granularity ablation *)
  | No_timing  (** control flow without time — degrades to unordered events *)

type cost_model = {
  per_event_ns : float;  (** fixed cost charged per control event *)
  per_byte_ns : float;  (** cost per trace byte written *)
  per_thread_ns : float;
      (** extra per-event cost for each live trace buffer the driver
          manages; reproduces Figure 9's mild growth with thread count *)
}

type t = {
  buffer_size : int;  (** ring capacity in bytes, per thread *)
  timing : timing_mode;
  psb_period_bytes : int;  (** emit a PSB sync at least this often *)
  costs : cost_model;
}

val default : t
(** 64 KB ring, CYC+MTC with a 1024 ns MTC period, PSB every 4 KB, and the
    calibrated cost model. *)

val default_costs : cost_model

val timing_code : timing_mode -> int * int
(** [(tag, period)] pair for wire serialization of the timing mode; the
    fleet report envelope carries it so the server decodes each endpoint's
    traces under the parameters they were produced with. *)

val timing_of_code : tag:int -> period:int -> timing_mode option
(** Inverse of {!timing_code}; [None] on an unknown tag or a non-positive
    period for the periodic modes. *)
