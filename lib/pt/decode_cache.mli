(** A bounded memo cache in front of {!Decoder}.

    The fleet collector re-runs a bucket's diagnosis as reports trickle
    in, and every re-run used to re-decode byte-identical ring snapshots
    — the hot path scaled with reports² instead of reports.  Decoding is
    a pure function of (module, tracer config, tail_stop, snapshot
    bytes), so the server memoizes it: the key digests all four.
    [tail_stop] MUST be part of the key — the same ring replayed to a
    failing pc and replayed with no tail yields different step suffixes
    (see DESIGN.md).

    Hits, misses and evictions are counted on the cache and mirrored to
    the ambient {!Obs.Scope} as [decode_cache/{hits,misses,evictions}]
    (a no-op on domains without a scope installed).

    The cache is lock-striped: keys map to one of N segments by digest
    hash, each segment a private table + LRU clock + counters behind its
    own mutex, so concurrent probes from shard and pool domains only
    contend when they collide on a stripe.  Caches smaller than 64
    entries use a single segment, which keeps their LRU order exact;
    larger ones stripe up to 16 ways (eviction then approximates global
    LRU per stripe).  The stripe count is fixed at creation —
    {!set_capacity} redistributes capacity across the existing
    segments. *)

type t

val create : ?capacity:int -> unit -> t
(** Holds at most [capacity] decode results (default 256), evicting the
    least recently used.  Capacity 0 disables the cache: {!find} always
    misses and {!add} is a no-op. *)

val shared : t
(** The process-wide cache (capacity 256) that trace processing uses by
    default; [--decode-cache N] resizes it, [--decode-cache 0] turns it
    off. *)

val capacity : t -> int

val set_capacity : t -> int -> unit
(** Shrinking evicts LRU entries down to the new capacity (counted as
    evictions); 0 clears and disables.  Raises [Invalid_argument] on
    negative capacity. *)

val enabled : t -> bool
(** [capacity t > 0] — callers skip key digesting entirely when off. *)

val key :
  Lir.Irmod.t -> config:Config.t -> ?tail_stop:int * int -> bytes -> string
(** Digest of module identity (name + instruction count), the decode
    parameters, the tail replay target, and the snapshot bytes.  The
    snapshot is hashed in place (digest-of-digest), never copied. *)

val find : t -> string -> Decoder.result option
(** Counts a hit or miss (also into the ambient scope). *)

val add : t -> string -> Decoder.result -> unit
(** Insert (or refresh) a decode result, evicting the LRU entry when
    full.  The result's [steps] array is shared, never copied: consumers
    must not mutate it. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats
(** Counters summed over every segment (each read under its own lock).
    Every {!find} increments exactly one of hits/misses, so
    [hits + misses] equals the total probe count even under concurrent
    access from many domains. *)

val segments : t -> int
(** Number of lock stripes (fixed at creation). *)

val segment_stats : t -> stats array
(** Per-segment counters, in stripe order; {!stats} is their sum. *)

val clear : t -> unit
(** Drop all entries and reset the hit/miss/eviction counters. *)
