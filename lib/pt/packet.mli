(** Byte-level packet format of the control-flow trace, modelled on Intel
    Processor Trace (§5): per-thread streams of control packets (TNT bits
    for conditional branches, TIP for indirect targets, i.e. returns) and
    timing packets (MTC coarse-clock ticks, CYC deltas, TMA full re-syncs),
    with PSB synchronization points a decoder can find after the ring
    buffer has wrapped.

    Framing guarantees the byte pair [0x02 0x82] occurs only at a PSB
    boundary: packet headers are < 0x20, varint payload bytes never pair a
    terminal 0x02 with a following 0x82, and the single raw payload byte
    (MTC) follows its own header directly. *)

type t =
  | Psb of { tsc : int }  (** sync point with full timestamp (ns) *)
  | Fup of { pc : int }  (** pc bound to the preceding PSB *)
  | Tip of { pc : int }  (** indirect branch (return) target *)
  | Tip_end  (** thread exited (entry function returned) *)
  | Tnt of bool  (** conditional branch outcome *)
  | Mtc of { ctc : int }  (** low 8 bits of the coarse time counter *)
  | Tma of { tsc : int }  (** full timestamp after a long quiet gap *)
  | Cyc of { delta : int }  (** ns elapsed since the last timing packet *)

val encode : Buffer.t -> t -> unit

val decode_stream : bytes -> pos:int -> (t * int) list
(** Parse consecutive packets starting at [pos] (which must be a packet
    boundary) until the end of the buffer; each packet is paired with its
    start offset.  A truncated final packet is dropped.  A malformed
    header at a supposed boundary resynchronizes at the next PSB (the
    bytes in between are lost); decoding never raises. *)

val scan_psb : bytes -> pos:int -> int option
(** Offset of the first PSB at or after [pos], or [None]. *)

val to_string : t -> string
