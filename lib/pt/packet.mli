(** Byte-level packet format of the control-flow trace, modelled on Intel
    Processor Trace (§5): per-thread streams of control packets (TNT bits
    for conditional branches, TIP for indirect targets, i.e. returns) and
    timing packets (MTC coarse-clock ticks, CYC deltas, TMA full re-syncs),
    with PSB synchronization points a decoder can find after the ring
    buffer has wrapped.

    Framing guarantees the byte pair [0x02 0x82] occurs only at a PSB
    boundary: packet headers are < 0x20, varint payload bytes never pair a
    terminal 0x02 with a following 0x82, and the single raw payload byte
    (MTC) follows its own header directly. *)

type t =
  | Psb of { tsc : int }  (** sync point with full timestamp (ns) *)
  | Fup of { pc : int }  (** pc bound to the preceding PSB *)
  | Tip of { pc : int }  (** indirect branch (return) target *)
  | Tip_end  (** thread exited (entry function returned) *)
  | Tnt of bool  (** conditional branch outcome (v1 per-bit form) *)
  | Tnt_packed of { bits : int; count : int }
      (** up to {!tnt_max_bits} branch outcomes in one packet, first
          branch in the least significant bit — the hardware-realistic
          form (Intel PT packs 6+ TNT bits per byte); the tracer emits
          these, and the per-bit v1 form stays decodable *)
  | Mtc of { ctc : int }  (** low 8 bits of the coarse time counter *)
  | Tma of { tsc : int }  (** full timestamp after a long quiet gap *)
  | Cyc of { delta : int }  (** ns elapsed since the last timing packet *)

val tnt_max_bits : int
(** Maximum [count] of a {!Tnt_packed} packet the tracer emits (48). *)

val encode : Buffer.t -> t -> unit
(** Raises [Invalid_argument] for a {!Tnt_packed} whose [count] is
    outside [1, tnt_max_bits]; bits above [count] are masked off. *)

val decode_stream : bytes -> pos:int -> (t * int) list
(** Parse consecutive packets starting at [pos] (which must be a packet
    boundary) until the end of the buffer; each packet is paired with its
    start offset.  A truncated final packet is dropped.  A malformed
    header at a supposed boundary resynchronizes at the next PSB (the
    bytes in between are lost); decoding never raises. *)

val scan_psb : bytes -> pos:int -> int option
(** Offset of the first PSB at or after [pos], or [None]. *)

(** Allocation-free packet reader: the hot-path alternative to
    {!decode_stream}.  A cursor steps through the byte stream mutating
    its own fields — no packet values, tuples or list nodes are built —
    with the same totality contract: truncated final packet ends the
    stream, a corrupt header resynchronizes at the next PSB.  The two
    readers are differentially tested against each other. *)
module Cursor : sig
  type kind =
    | Eof  (** end of stream (incl. a truncated final packet) *)
    | Psb  (** [value] = tsc *)
    | Fup  (** [value] = pc *)
    | Tip  (** [value] = pc *)
    | Tip_end
    | Tnt  (** [count] branch bits in [value], LSB first (1 for v1 form) *)
    | Mtc  (** [value] = ctc *)
    | Tma  (** [value] = tsc *)
    | Cyc  (** [value] = delta *)

  type t = {
    buf : bytes;
    len : int;
    mutable pos : int;  (** offset of the NEXT packet *)
    mutable kind : kind;
    mutable value : int;
    mutable count : int;
  }

  val make : bytes -> pos:int -> t
  (** A cursor positioned at [pos] (a packet boundary); [kind] is
      meaningless until the first {!advance}. *)

  val advance : t -> unit
  (** Step to the next packet, filling [kind]/[value]/[count]. *)
end

val to_string : t -> string
