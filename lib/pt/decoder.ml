(* [t_hi = None] is an open upper bound: the ring ended before any later
   timing packet, so the event is only known to happen at or after
   [t_lo].  Keeping the open end explicit (rather than a max_int
   sentinel) makes window arithmetic such as [t_hi - t_lo] total for
   consumers. *)
module Dynbuf = Snorlax_util.Dynbuf

type step = { pc : int; iid : int; t_lo : int; t_hi : int option }

type result = { steps : step array; lost_bytes : int; desynced : bool }

let mtc_period config =
  match config.Config.timing with
  | Config.Cyc_and_mtc { mtc_period_ns } | Config.Mtc_only { mtc_period_ns } ->
    mtc_period_ns
  | Config.No_timing -> 0

(* Pair every packet with the time interval the decoder can assign to it:
   [lo] is the clock after the last timing packet at or before it; [hi] is
   the first clock value known after it (the next timing packet), so an
   event stamped [lo, hi] genuinely happened inside that window even when
   timing packets are sparse (Mtc_only mode).  When an exact timing packet
   (CYC/TMA/PSB) directly precedes a control packet — the tracer emits
   them at the event itself — the event time is exact and hi = lo. *)
let timestamp_packets config packets =
  let period = mtc_period config in
  let arr = Array.of_list packets in
  let n = Array.length arr in
  let lo = Array.make n 0 in
  let exact = Array.make n false in
  let time = ref 0 in
  let abs_ctc = ref 0 in
  Array.iteri
    (fun i (p, _) ->
      (match p with
      | Packet.Psb { tsc } | Packet.Tma { tsc } ->
        time := tsc;
        if period > 0 then abs_ctc := tsc / period;
        exact.(i) <- true
      | Packet.Mtc { ctc } ->
        if period > 0 then begin
          (* Smallest absolute counter >= current with the given low byte. *)
          let base = !abs_ctc land lnot 0xff in
          let candidate = base lor ctc in
          let abs =
            if candidate >= !abs_ctc then candidate else candidate + 0x100
          in
          abs_ctc := abs;
          time := max !time (abs * period)
        end
      | Packet.Cyc { delta } ->
        time := !time + delta;
        exact.(i) <- true
      | Packet.Fup _ | Packet.Tip _ | Packet.Tip_end | Packet.Tnt _ -> ());
      lo.(i) <- !time)
    arr;
  let is_timing i =
    match fst arr.(i) with
    | Packet.Psb _ | Packet.Tma _ | Packet.Mtc _ | Packet.Cyc _ -> true
    | Packet.Fup _ | Packet.Tip _ | Packet.Tip_end | Packet.Tnt _ -> false
  in
  let hi = Array.make n None in
  let next_known = ref None in
  for i = n - 1 downto 0 do
    hi.(i) <-
      (if i > 0 && is_timing (i - 1) && exact.(i - 1) then Some lo.(i)
       else !next_known);
    if is_timing i then next_known := Some lo.(i)
  done;
  List.init n (fun i -> (fst arr.(i), lo.(i), hi.(i)))

type walker = {
  m : Lir.Irmod.t;
  mutable cur_pc : int;
  mutable t_lo : int;
  acc : step Dynbuf.t;
}

exception Desync of string
exception Thread_end

let max_replay_steps = 5_000_000

let emit w ~t_hi =
  let i = Lir.Irmod.instr_at_pc w.m w.cur_pc in
  Dynbuf.push w.acc { pc = w.cur_pc; iid = i.Lir.Instr.iid; t_lo = w.t_lo; t_hi };
  if Dynbuf.length w.acc > max_replay_steps then
    raise (Desync "replay step limit")

let block_entry_pc w (f : Lir.Func.t) label =
  Lir.Irmod.block_start_pc w.m ~fname:f.Lir.Func.fname ~label

(* Advance through branch-free instructions, emitting each with the current
   interval, until an instruction that needs a control packet to resolve. *)
let rec walk_until_control w ~t_hi =
  let i = Lir.Irmod.instr_at_pc w.m w.cur_pc in
  match i.Lir.Instr.kind with
  | Lir.Instr.Cond_br _ | Lir.Instr.Ret _ -> ()
  | Lir.Instr.Call { callee; _ } when Lir.Intrinsics.is_intrinsic callee ->
    (* Library calls return via a traced indirect branch (TIP). *)
    ()
  | Lir.Instr.Br label ->
    emit w ~t_hi;
    let f, _ = Lir.Irmod.location_of_iid w.m i.Lir.Instr.iid in
    w.cur_pc <- block_entry_pc w f label;
    walk_until_control w ~t_hi
  | Lir.Instr.Call { callee; _ } ->
    emit w ~t_hi;
    let target = Lir.Irmod.find_func w.m callee in
    w.cur_pc <-
      block_entry_pc w target (Lir.Func.entry target).Lir.Block.label;
    walk_until_control w ~t_hi
  | Lir.Instr.Unreachable -> raise (Desync "walked into unreachable")
  | Lir.Instr.Alloca _ | Lir.Instr.Load _ | Lir.Instr.Store _
  | Lir.Instr.Binop _ | Lir.Instr.Icmp _ | Lir.Instr.Gep _ | Lir.Instr.Index _
  | Lir.Instr.Cast _ ->
    emit w ~t_hi;
    w.cur_pc <- w.cur_pc + 4;
    walk_until_control w ~t_hi

let consume_control w packet ~t_lo_ev ~t_hi_ev =
  walk_until_control w ~t_hi:t_hi_ev;
  let i = Lir.Irmod.instr_at_pc w.m w.cur_pc in
  match i.Lir.Instr.kind, packet with
  | Lir.Instr.Call { callee; _ }, Packet.Tip { pc }
    when Lir.Intrinsics.is_intrinsic callee ->
    emit w ~t_hi:t_hi_ev;
    w.cur_pc <- pc;
    w.t_lo <- t_lo_ev
  | Lir.Instr.Cond_br { then_; else_; _ }, Packet.Tnt taken ->
    emit w ~t_hi:t_hi_ev;
    let f, _ = Lir.Irmod.location_of_iid w.m i.Lir.Instr.iid in
    w.cur_pc <- block_entry_pc w f (if taken then then_ else else_);
    w.t_lo <- t_lo_ev
  | Lir.Instr.Ret _, Packet.Tip { pc } ->
    emit w ~t_hi:t_hi_ev;
    w.cur_pc <- pc;
    w.t_lo <- t_lo_ev
  | Lir.Instr.Ret _, Packet.Tip_end ->
    emit w ~t_hi:t_hi_ev;
    w.t_lo <- t_lo_ev;
    raise Thread_end
  | _, _ ->
    raise
      (Desync
         (Printf.sprintf "control mismatch at pc 0x%x for %s" w.cur_pc
            (Packet.to_string packet)))

(* After the last packet, replay branch-free code up to the failing pc. *)
let walk_tail w ~stop_pc ~t_hi =
  let rec go () =
    if w.cur_pc = stop_pc then emit w ~t_hi
    else
      let i = Lir.Irmod.instr_at_pc w.m w.cur_pc in
      match i.Lir.Instr.kind with
      | Lir.Instr.Cond_br _ | Lir.Instr.Ret _ | Lir.Instr.Unreachable -> ()
      | Lir.Instr.Br label ->
        emit w ~t_hi;
        let f, _ = Lir.Irmod.location_of_iid w.m i.Lir.Instr.iid in
        w.cur_pc <- block_entry_pc w f label;
        go ()
      | Lir.Instr.Call { callee; _ }
        when not (Lir.Intrinsics.is_intrinsic callee) ->
        emit w ~t_hi;
        let target = Lir.Irmod.find_func w.m callee in
        w.cur_pc <-
          block_entry_pc w target (Lir.Func.entry target).Lir.Block.label;
        go ()
      | Lir.Instr.Alloca _ | Lir.Instr.Load _ | Lir.Instr.Store _
      | Lir.Instr.Binop _ | Lir.Instr.Icmp _ | Lir.Instr.Gep _
      | Lir.Instr.Index _ | Lir.Instr.Cast _ | Lir.Instr.Call _ ->
        emit w ~t_hi;
        w.cur_pc <- w.cur_pc + 4;
        go ()
  in
  go ()

let record_metrics ?into r ~snapshot_bytes =
  let record count observe =
    count "pt/decode_calls" 1;
    count "pt/decoded_steps" (Array.length r.steps);
    count "pt/lost_bytes" r.lost_bytes;
    count "pt/desyncs" (if r.desynced then 1 else 0);
    observe "pt/snapshot_bytes" (float_of_int snapshot_bytes)
  in
  match into with
  | Some m ->
    (* A private (typically pool-worker) registry: record directly, no
       ambient state touched, so this is safe off the main domain. *)
    record
      (fun name n -> Obs.Metrics.add (Obs.Metrics.counter m name) n)
      (fun name v -> Obs.Metrics.observe (Obs.Metrics.histogram m name) v)
  | None ->
    if Obs.Scope.enabled () then record Obs.Scope.count Obs.Scope.observe

(* The telemetry-free decode.  Safe to call off the main domain (the
   ambient Obs scope is not domain-safe): parallel callers decode with
   this and record metrics from the submitting domain afterwards. *)
let decode_raw m ~config ?tail_stop snapshot =
  Lir.Irmod.layout m;
  match Packet.scan_psb snapshot ~pos:0 with
  | None ->
    { steps = [||]; lost_bytes = Bytes.length snapshot; desynced = false }
  | Some sync_pos ->
    let packets =
      timestamp_packets config (Packet.decode_stream snapshot ~pos:sync_pos)
    in
    let w = { m; cur_pc = -1; t_lo = 0; acc = Dynbuf.create () } in
    let desynced = ref false in
    let ended = ref false in
    (try
       let feed (p, t_lo_ev, t_hi_ev) =
         match p with
         | Packet.Fup { pc } ->
           if w.cur_pc = -1 then begin
             w.cur_pc <- pc;
             w.t_lo <- t_lo_ev
           end
         | Packet.Psb _ | Packet.Tma _ | Packet.Mtc _ | Packet.Cyc _ -> ()
         | Packet.Tnt _ | Packet.Tip _ | Packet.Tip_end ->
           if w.cur_pc <> -1 then consume_control w p ~t_lo_ev ~t_hi_ev
       in
       List.iter feed packets;
       match tail_stop with
       | Some (stop_pc, t_hi) when w.cur_pc <> -1 ->
         (* The tail ends at the failure, whose time is known. *)
         walk_tail w ~stop_pc ~t_hi:(Some t_hi)
       | Some _ | None -> ()
     with
    | Desync _ -> desynced := true
    | Thread_end -> ended := true
    (* A corrupted TIP/FUP packet can carry a pc that maps to no
       instruction; Irmod lookups raise Not_found.  Untrusted ring
       bytes must degrade to a desync, not an escape. *)
    | Not_found -> desynced := true);
    ignore !ended;
    { steps = Dynbuf.to_array w.acc; lost_bytes = sync_pos; desynced = !desynced }

let decode m ~config ?tail_stop snapshot =
  let r = decode_raw m ~config ?tail_stop snapshot in
  record_metrics r ~snapshot_bytes:(Bytes.length snapshot);
  r
