(* [t_hi = None] is an open upper bound: the ring ended before any later
   timing packet, so the event is only known to happen at or after
   [t_lo].  Keeping the open end explicit (rather than a max_int
   sentinel) makes window arithmetic such as [t_hi - t_lo] total for
   consumers.

   Two implementations live here.  [decode_raw] is the production path:
   a zero-allocation byte cursor feeds a CFG walker that resolves every
   branch target through a pc-indexed table (built once per module
   layout) and accumulates steps in a per-domain integer arena reused
   across decodes.  [decode_reference] is the frozen v1 pipeline —
   packet list, two-pass timestamping, hashtable lookups — kept as the
   differential baseline: the two must produce bit-identical results on
   any input, corrupt rings included, and the benchmark's sequential
   baseline times the reference. *)
module Dynbuf = Snorlax_util.Dynbuf

type step = { pc : int; iid : int; t_lo : int; t_hi : int option }

type result = {
  steps : step array;
  lost_bytes : int;
  desynced : bool;
  thread_ended : bool;
}

let mtc_period config =
  match config.Config.timing with
  | Config.Cyc_and_mtc { mtc_period_ns } | Config.Mtc_only { mtc_period_ns } ->
    mtc_period_ns
  | Config.No_timing -> 0

exception Desync of string
exception Thread_end

let max_replay_steps = 5_000_000

(* --- walk table ----------------------------------------------------------

   The v1 walker resolved control flow through [Irmod] hashtables on
   every step: [instr_at_pc] per instruction, plus [location_of_iid] +
   [block_start_pc] (a string-pair key allocation) per direct branch and
   a linear [find_func] scan per call.  All of that is a pure function
   of the module layout, so it is precomputed here into flat arrays
   indexed by [pc / 4]: one load per step, no hashing, no allocation. *)

let op_straight = 0 (* fallthrough to pc + 4 *)
let op_br = 1 (* unconditional; [a] = target pc *)
let op_call = 2 (* direct call; [a] = callee entry pc *)
let op_cond = 3 (* conditional; [a] = then pc, [b] = else pc *)
let op_ret = 4
let op_intrinsic = 5 (* library call returning via a traced TIP *)
let op_unreachable = 6
let op_hole = 7 (* no instruction at this pc *)

type walk_table = {
  ops : Bytes.t;  (* op_* per pc slot *)
  iid_of : int array;
  a : int array;
  b : int array;
}

let build_walk_table m =
  Lir.Irmod.layout m;
  let max_pc = ref 0 in
  Lir.Irmod.iter_instrs m (fun _ _ i ->
      if i.Lir.Instr.pc > !max_pc then max_pc := i.Lir.Instr.pc);
  let slots = (!max_pc lsr 2) + 1 in
  let t =
    {
      ops = Bytes.make slots (Char.chr op_hole);
      iid_of = Array.make slots (-1);
      a = Array.make slots 0;
      b = Array.make slots 0;
    }
  in
  let entry_pc fname label = Lir.Irmod.block_start_pc m ~fname ~label in
  Lir.Irmod.iter_instrs m (fun f _ i ->
      let idx = i.Lir.Instr.pc lsr 2 in
      t.iid_of.(idx) <- i.Lir.Instr.iid;
      let set op = Bytes.set t.ops idx (Char.chr op) in
      match i.Lir.Instr.kind with
      | Lir.Instr.Br label ->
        set op_br;
        t.a.(idx) <- entry_pc f.Lir.Func.fname label
      | Lir.Instr.Cond_br { then_; else_; _ } ->
        set op_cond;
        t.a.(idx) <- entry_pc f.Lir.Func.fname then_;
        t.b.(idx) <- entry_pc f.Lir.Func.fname else_
      | Lir.Instr.Call { callee; _ } ->
        if Lir.Intrinsics.is_intrinsic callee then set op_intrinsic
        else begin
          set op_call;
          let target = Lir.Irmod.find_func m callee in
          t.a.(idx) <-
            entry_pc callee (Lir.Func.entry target).Lir.Block.label
        end
      | Lir.Instr.Ret _ -> set op_ret
      | Lir.Instr.Unreachable -> set op_unreachable
      | Lir.Instr.Alloca _ | Lir.Instr.Load _ | Lir.Instr.Store _
      | Lir.Instr.Binop _ | Lir.Instr.Icmp _ | Lir.Instr.Gep _
      | Lir.Instr.Index _ | Lir.Instr.Cast _ ->
        set op_straight);
  t

(* One-entry cache keyed on module identity + layout generation, held in
   domain-local storage: decodes of one batch all target the same module,
   and giving each domain its own slot removes the lookup mutex the old
   shared cache needed — a worker builds the table once per (domain,
   module) from the read-only post-layout module and then hits every
   time.  [prepare] still warms the submitting domain's slot. *)
let table_cache : (Lir.Irmod.t * int * walk_table) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let walk_table m =
  let slot = Domain.DLS.get table_cache in
  match !slot with
  | Some (m', gen, t) when m' == m && gen = Lir.Irmod.generation m -> t
  | _ ->
    let t = build_walk_table m in
    slot := Some (m, Lir.Irmod.generation m, t);
    t

let prepare m =
  Lir.Irmod.layout m;
  ignore (walk_table m : walk_table)

(* --- cursor walker --------------------------------------------------------

   Steps accumulate into a stride-4 integer arena (pc, iid, t_lo, t_hi
   slot) held in domain-local storage, so a batch of decodes on one
   domain reuses the same backing array instead of reallocating per
   trace.  The t_hi slot is an int: >= 0 a concrete bound, [hi_pending]
   waiting for the next timing packet to backfill; any slot still
   negative at materialization is the open upper bound [None]. *)

let hi_pending = -2

let arena_key : int Dynbuf.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Dynbuf.create ())

type cwalker = {
  tab : walk_table;
  mutable cur_pc : int;
  mutable t_lo : int;
  acc : int Dynbuf.t;
}

let[@inline] slot_of w pc =
  if pc land 3 <> 0 then raise (Desync "pc not instruction-aligned");
  let idx = pc lsr 2 in
  if idx < 0 || idx >= Array.length w.tab.iid_of then
    raise (Desync "pc outside module");
  idx

let[@inline] emit_c w idx ~hi =
  (* [idx] was validated by [slot_of]. *)
  Dynbuf.push4 w.acc w.cur_pc (Array.unsafe_get w.tab.iid_of idx) w.t_lo hi;
  if Dynbuf.length w.acc > max_replay_steps * 4 then
    raise (Desync "replay step limit")

(* Advance through branch-free instructions, emitting each with the
   current interval, until an instruction that needs a control packet to
   resolve.  Returns that instruction's slot. *)
let rec walk_until_control_c w ~hi =
  let idx = slot_of w w.cur_pc in
  let op = Char.code (Bytes.unsafe_get w.tab.ops idx) in
  if op = op_straight then begin
    emit_c w idx ~hi;
    w.cur_pc <- w.cur_pc + 4;
    walk_until_control_c w ~hi
  end
  else if op = op_br || op = op_call then begin
    emit_c w idx ~hi;
    w.cur_pc <- Array.unsafe_get w.tab.a idx;
    walk_until_control_c w ~hi
  end
  else if op = op_cond || op = op_ret || op = op_intrinsic then idx
  else if op = op_hole then raise (Desync "pc maps to no instruction")
  else raise (Desync "walked into unreachable")

(* Consume one TNT bit: walk to the pending control point, which must be
   a conditional branch. *)
let consume_tnt_c w ~taken ~t_lo_ev ~hi =
  let idx = walk_until_control_c w ~hi in
  if Char.code (Bytes.unsafe_get w.tab.ops idx) <> op_cond then
    raise (Desync "control mismatch: TNT at a non-conditional");
  emit_c w idx ~hi;
  w.cur_pc <-
    (if taken then Array.unsafe_get w.tab.a idx
     else Array.unsafe_get w.tab.b idx);
  w.t_lo <- t_lo_ev

(* Consume a TIP (target pc) or TIP.END ([is_end]): the control point
   must be a return or an intrinsic call.  [is_end] is the packet kind,
   not the sign of [target] — a corrupt TIP can carry a varint that
   overflowed negative, and that garbage target must be stored as-is
   (desyncing only if dereferenced), exactly like the reference. *)
let consume_tip_c w ~target ~is_end ~t_lo_ev ~hi =
  let idx = walk_until_control_c w ~hi in
  let op = Char.code (Bytes.unsafe_get w.tab.ops idx) in
  if op = op_intrinsic then
    if not is_end then begin
      emit_c w idx ~hi;
      w.cur_pc <- target;
      w.t_lo <- t_lo_ev
    end
    else raise (Desync "control mismatch: TIP.END at a call")
  else if op = op_ret then begin
    emit_c w idx ~hi;
    w.t_lo <- t_lo_ev;
    if is_end then raise Thread_end else w.cur_pc <- target
  end
  else raise (Desync "control mismatch: TIP at a non-return")

(* After the last packet, replay branch-free code up to the failing pc. *)
let walk_tail_c w ~stop_pc ~hi =
  let rec go () =
    if w.cur_pc = stop_pc then emit_c w (slot_of w w.cur_pc) ~hi
    else begin
      let idx = slot_of w w.cur_pc in
      let op = Char.code (Bytes.unsafe_get w.tab.ops idx) in
      if op = op_cond || op = op_ret || op = op_unreachable then ()
      else if op = op_br || op = op_call then begin
        emit_c w idx ~hi;
        w.cur_pc <- Array.unsafe_get w.tab.a idx;
        go ()
      end
      else if op = op_hole then raise (Desync "pc maps to no instruction")
      else begin
        (* Straight-line code; an intrinsic call in the tail falls
           through too (its return TIP was never traced). *)
        emit_c w idx ~hi;
        w.cur_pc <- w.cur_pc + 4;
        go ()
      end
    end
  in
  go ()

let decode_raw m ~config ?tail_stop snapshot =
  let tab = walk_table m in
  match Packet.scan_psb snapshot ~pos:0 with
  | None ->
    {
      steps = [||];
      lost_bytes = Bytes.length snapshot;
      desynced = false;
      thread_ended = false;
    }
  | Some sync_pos ->
    let period = mtc_period config in
    let acc = Domain.DLS.get arena_key in
    Dynbuf.clear acc;
    let w = { tab; cur_pc = -1; t_lo = 0; acc } in
    let cur = Packet.Cursor.make snapshot ~pos:sync_pos in
    let time = ref 0 in
    let abs_ctc = ref 0 in
    (* True when the previous packet was an exact timing packet
       (PSB/TMA/CYC): the control packet directly after one is stamped
       exactly, hi = lo. *)
    let prev_exact = ref false in
    (* First arena t_hi slot still waiting for the next timing packet. *)
    let pending_from = ref (-1) in
    let backfill () =
      if !pending_from >= 0 then begin
        let v = !time in
        let n = Dynbuf.length acc in
        let i = ref (!pending_from + 3) in
        while !i < n do
          if Dynbuf.unsafe_get acc !i = hi_pending then
            Dynbuf.unsafe_set acc !i v;
          i := !i + 4
        done;
        pending_from := -1
      end
    in
    let mark_pending () =
      if !pending_from < 0 then pending_from := Dynbuf.length acc
    in
    let desynced = ref false in
    let ended = ref false in
    (try
       let continue = ref true in
       while !continue do
         Packet.Cursor.advance cur;
         match cur.Packet.Cursor.kind with
         | Packet.Cursor.Eof -> continue := false
         | Packet.Cursor.Psb | Packet.Cursor.Tma ->
           time := cur.Packet.Cursor.value;
           if period > 0 then abs_ctc := !time / period;
           backfill ();
           prev_exact := true
         | Packet.Cursor.Cyc ->
           time := !time + cur.Packet.Cursor.value;
           backfill ();
           prev_exact := true
         | Packet.Cursor.Mtc ->
           if period > 0 then begin
             (* Smallest absolute counter >= current with this low byte. *)
             let base = !abs_ctc land lnot 0xff in
             let candidate = base lor cur.Packet.Cursor.value in
             let abs =
               if candidate >= !abs_ctc then candidate else candidate + 0x100
             in
             abs_ctc := abs;
             time := max !time (abs * period)
           end;
           backfill ();
           prev_exact := false
         | Packet.Cursor.Fup ->
           if w.cur_pc = -1 then begin
             w.cur_pc <- cur.Packet.Cursor.value;
             w.t_lo <- !time
           end;
           prev_exact := false
         | Packet.Cursor.Tnt ->
           let bits = cur.Packet.Cursor.value in
           let count = cur.Packet.Cursor.count in
           if w.cur_pc <> -1 then
             for j = 0 to count - 1 do
               let hi =
                 if !prev_exact && j = 0 then !time
                 else begin
                   mark_pending ();
                   hi_pending
                 end
               in
               consume_tnt_c w
                 ~taken:((bits lsr j) land 1 = 1)
                 ~t_lo_ev:!time ~hi
             done;
           prev_exact := false
         | Packet.Cursor.Tip | Packet.Cursor.Tip_end ->
           let is_end = cur.Packet.Cursor.kind = Packet.Cursor.Tip_end in
           let target = if is_end then -1 else cur.Packet.Cursor.value in
           if w.cur_pc <> -1 then begin
             let hi =
               if !prev_exact then !time
               else begin
                 mark_pending ();
                 hi_pending
               end
             in
             consume_tip_c w ~target ~is_end ~t_lo_ev:!time ~hi
           end;
           prev_exact := false
       done;
       match tail_stop with
       | Some (stop_pc, t_hi) when w.cur_pc <> -1 ->
         (* The tail ends at the failure, whose time is known. *)
         walk_tail_c w ~stop_pc ~hi:t_hi
       | Some _ | None -> ()
     with
    | Desync _ -> desynced := true
    | Thread_end -> ended := true);
    (* A desync or thread end stops the walk, but hi timestamps come
       from the whole packet stream (the reference pipeline stamps all
       packets before walking): keep scanning timing packets so steps
       already emitted get the same backfill. *)
    if !pending_from >= 0 then begin
      let continue = ref true in
      while !continue && !pending_from >= 0 do
        Packet.Cursor.advance cur;
        match cur.Packet.Cursor.kind with
        | Packet.Cursor.Eof -> continue := false
        | Packet.Cursor.Psb | Packet.Cursor.Tma ->
          time := cur.Packet.Cursor.value;
          if period > 0 then abs_ctc := !time / period;
          backfill ()
        | Packet.Cursor.Cyc ->
          time := !time + cur.Packet.Cursor.value;
          backfill ()
        | Packet.Cursor.Mtc ->
          if period > 0 then begin
            let base = !abs_ctc land lnot 0xff in
            let candidate = base lor cur.Packet.Cursor.value in
            let abs =
              if candidate >= !abs_ctc then candidate else candidate + 0x100
            in
            abs_ctc := abs;
            time := max !time (abs * period)
          end;
          backfill ()
        | Packet.Cursor.Fup | Packet.Cursor.Tnt | Packet.Cursor.Tip
        | Packet.Cursor.Tip_end -> ()
      done
    end;
    let n = Dynbuf.length acc / 4 in
    (* Consecutive steps usually share the same backfilled hi bound, so
       one [Some] box serves the whole run. *)
    let last_h = ref min_int in
    let last_opt = ref None in
    let steps =
      Array.init n (fun i ->
          let base = i * 4 in
          let h = Dynbuf.unsafe_get acc (base + 3) in
          {
            pc = Dynbuf.unsafe_get acc base;
            iid = Dynbuf.unsafe_get acc (base + 1);
            t_lo = Dynbuf.unsafe_get acc (base + 2);
            t_hi =
              (if h < 0 then None
               else begin
                 if h <> !last_h then begin
                   last_h := h;
                   last_opt := Some h
                 end;
                 !last_opt
               end);
          })
    in
    { steps; lost_bytes = sync_pos; desynced = !desynced; thread_ended = !ended }

(* --- frozen v1 reference pipeline ---------------------------------------- *)

(* Pair every packet with the time interval the decoder can assign to it:
   [lo] is the clock after the last timing packet at or before it; [hi] is
   the first clock value known after it (the next timing packet), so an
   event stamped [lo, hi] genuinely happened inside that window even when
   timing packets are sparse (Mtc_only mode).  When an exact timing packet
   (CYC/TMA/PSB) directly precedes a control packet — the tracer emits
   them at the event itself — the event time is exact and hi = lo. *)
let timestamp_packets config packets =
  let period = mtc_period config in
  let arr = Array.of_list packets in
  let n = Array.length arr in
  let lo = Array.make n 0 in
  let exact = Array.make n false in
  let time = ref 0 in
  let abs_ctc = ref 0 in
  Array.iteri
    (fun i (p, _) ->
      (match p with
      | Packet.Psb { tsc } | Packet.Tma { tsc } ->
        time := tsc;
        if period > 0 then abs_ctc := tsc / period;
        exact.(i) <- true
      | Packet.Mtc { ctc } ->
        if period > 0 then begin
          (* Smallest absolute counter >= current with the given low byte. *)
          let base = !abs_ctc land lnot 0xff in
          let candidate = base lor ctc in
          let abs =
            if candidate >= !abs_ctc then candidate else candidate + 0x100
          in
          abs_ctc := abs;
          time := max !time (abs * period)
        end
      | Packet.Cyc { delta } ->
        time := !time + delta;
        exact.(i) <- true
      | Packet.Fup _ | Packet.Tip _ | Packet.Tip_end | Packet.Tnt _
      | Packet.Tnt_packed _ -> ());
      lo.(i) <- !time)
    arr;
  let is_timing i =
    match fst arr.(i) with
    | Packet.Psb _ | Packet.Tma _ | Packet.Mtc _ | Packet.Cyc _ -> true
    | Packet.Fup _ | Packet.Tip _ | Packet.Tip_end | Packet.Tnt _
    | Packet.Tnt_packed _ -> false
  in
  let hi = Array.make n None in
  let next_known = ref None in
  for i = n - 1 downto 0 do
    hi.(i) <-
      (if i > 0 && is_timing (i - 1) && exact.(i - 1) then Some lo.(i)
       else !next_known);
    if is_timing i then next_known := Some lo.(i)
  done;
  List.init n (fun i -> (fst arr.(i), lo.(i), hi.(i)))

type walker = {
  m : Lir.Irmod.t;
  mutable cur_pc : int;
  mutable t_lo : int;
  acc : step Dynbuf.t;
}

let emit w ~t_hi =
  let i = Lir.Irmod.instr_at_pc w.m w.cur_pc in
  Dynbuf.push w.acc { pc = w.cur_pc; iid = i.Lir.Instr.iid; t_lo = w.t_lo; t_hi };
  if Dynbuf.length w.acc > max_replay_steps then
    raise (Desync "replay step limit")

let block_entry_pc w (f : Lir.Func.t) label =
  Lir.Irmod.block_start_pc w.m ~fname:f.Lir.Func.fname ~label

(* Advance through branch-free instructions, emitting each with the current
   interval, until an instruction that needs a control packet to resolve. *)
let rec walk_until_control w ~t_hi =
  let i = Lir.Irmod.instr_at_pc w.m w.cur_pc in
  match i.Lir.Instr.kind with
  | Lir.Instr.Cond_br _ | Lir.Instr.Ret _ -> ()
  | Lir.Instr.Call { callee; _ } when Lir.Intrinsics.is_intrinsic callee ->
    (* Library calls return via a traced indirect branch (TIP). *)
    ()
  | Lir.Instr.Br label ->
    emit w ~t_hi;
    let f, _ = Lir.Irmod.location_of_iid w.m i.Lir.Instr.iid in
    w.cur_pc <- block_entry_pc w f label;
    walk_until_control w ~t_hi
  | Lir.Instr.Call { callee; _ } ->
    emit w ~t_hi;
    let target = Lir.Irmod.find_func w.m callee in
    w.cur_pc <-
      block_entry_pc w target (Lir.Func.entry target).Lir.Block.label;
    walk_until_control w ~t_hi
  | Lir.Instr.Unreachable -> raise (Desync "walked into unreachable")
  | Lir.Instr.Alloca _ | Lir.Instr.Load _ | Lir.Instr.Store _
  | Lir.Instr.Binop _ | Lir.Instr.Icmp _ | Lir.Instr.Gep _ | Lir.Instr.Index _
  | Lir.Instr.Cast _ ->
    emit w ~t_hi;
    w.cur_pc <- w.cur_pc + 4;
    walk_until_control w ~t_hi

let consume_control w packet ~t_lo_ev ~t_hi_ev =
  walk_until_control w ~t_hi:t_hi_ev;
  let i = Lir.Irmod.instr_at_pc w.m w.cur_pc in
  match i.Lir.Instr.kind, packet with
  | Lir.Instr.Call { callee; _ }, Packet.Tip { pc }
    when Lir.Intrinsics.is_intrinsic callee ->
    emit w ~t_hi:t_hi_ev;
    w.cur_pc <- pc;
    w.t_lo <- t_lo_ev
  | Lir.Instr.Cond_br { then_; else_; _ }, Packet.Tnt taken ->
    emit w ~t_hi:t_hi_ev;
    let f, _ = Lir.Irmod.location_of_iid w.m i.Lir.Instr.iid in
    w.cur_pc <- block_entry_pc w f (if taken then then_ else else_);
    w.t_lo <- t_lo_ev
  | Lir.Instr.Ret _, Packet.Tip { pc } ->
    emit w ~t_hi:t_hi_ev;
    w.cur_pc <- pc;
    w.t_lo <- t_lo_ev
  | Lir.Instr.Ret _, Packet.Tip_end ->
    emit w ~t_hi:t_hi_ev;
    w.t_lo <- t_lo_ev;
    raise Thread_end
  | _, _ ->
    raise
      (Desync
         (Printf.sprintf "control mismatch at pc 0x%x for %s" w.cur_pc
            (Packet.to_string packet)))

(* After the last packet, replay branch-free code up to the failing pc. *)
let walk_tail w ~stop_pc ~t_hi =
  let rec go () =
    if w.cur_pc = stop_pc then emit w ~t_hi
    else
      let i = Lir.Irmod.instr_at_pc w.m w.cur_pc in
      match i.Lir.Instr.kind with
      | Lir.Instr.Cond_br _ | Lir.Instr.Ret _ | Lir.Instr.Unreachable -> ()
      | Lir.Instr.Br label ->
        emit w ~t_hi;
        let f, _ = Lir.Irmod.location_of_iid w.m i.Lir.Instr.iid in
        w.cur_pc <- block_entry_pc w f label;
        go ()
      | Lir.Instr.Call { callee; _ }
        when not (Lir.Intrinsics.is_intrinsic callee) ->
        emit w ~t_hi;
        let target = Lir.Irmod.find_func w.m callee in
        w.cur_pc <-
          block_entry_pc w target (Lir.Func.entry target).Lir.Block.label;
        go ()
      | Lir.Instr.Alloca _ | Lir.Instr.Load _ | Lir.Instr.Store _
      | Lir.Instr.Binop _ | Lir.Instr.Icmp _ | Lir.Instr.Gep _
      | Lir.Instr.Index _ | Lir.Instr.Cast _ | Lir.Instr.Call _ ->
        emit w ~t_hi;
        w.cur_pc <- w.cur_pc + 4;
        go ()
  in
  go ()

(* The packed multi-bit TNT decodes as if it were the per-bit run it
   compresses: same stream position for every bit, so the first bit (and
   only the first) can inherit an exactly-stamped window from a directly
   preceding timing packet — exactly what consecutive v1 TNT packets got. *)
let expand_packed packets =
  List.concat_map
    (fun (p, pos) ->
      match p with
      | Packet.Tnt_packed { bits; count } ->
        List.init count (fun j -> (Packet.Tnt ((bits lsr j) land 1 = 1), pos))
      | _ -> [ (p, pos) ])
    packets

let decode_reference m ~config ?tail_stop snapshot =
  Lir.Irmod.layout m;
  match Packet.scan_psb snapshot ~pos:0 with
  | None ->
    {
      steps = [||];
      lost_bytes = Bytes.length snapshot;
      desynced = false;
      thread_ended = false;
    }
  | Some sync_pos ->
    let packets =
      timestamp_packets config
        (expand_packed (Packet.decode_stream snapshot ~pos:sync_pos))
    in
    let w = { m; cur_pc = -1; t_lo = 0; acc = Dynbuf.create () } in
    let desynced = ref false in
    let ended = ref false in
    (try
       let feed (p, t_lo_ev, t_hi_ev) =
         match p with
         | Packet.Fup { pc } ->
           if w.cur_pc = -1 then begin
             w.cur_pc <- pc;
             w.t_lo <- t_lo_ev
           end
         | Packet.Psb _ | Packet.Tma _ | Packet.Mtc _ | Packet.Cyc _
         | Packet.Tnt_packed _ -> ()
         | Packet.Tnt _ | Packet.Tip _ | Packet.Tip_end ->
           if w.cur_pc <> -1 then consume_control w p ~t_lo_ev ~t_hi_ev
       in
       List.iter feed packets;
       match tail_stop with
       | Some (stop_pc, t_hi) when w.cur_pc <> -1 ->
         (* The tail ends at the failure, whose time is known. *)
         walk_tail w ~stop_pc ~t_hi:(Some t_hi)
       | Some _ | None -> ()
     with
    | Desync _ -> desynced := true
    | Thread_end -> ended := true
    (* A corrupted TIP/FUP packet can carry a pc that maps to no
       instruction; Irmod lookups raise Not_found.  Untrusted ring
       bytes must degrade to a desync, not an escape. *)
    | Not_found -> desynced := true);
    {
      steps = Dynbuf.to_array w.acc;
      lost_bytes = sync_pos;
      desynced = !desynced;
      thread_ended = !ended;
    }

let record_metrics ?into r ~snapshot_bytes =
  let record count observe =
    count "pt/decode_calls" 1;
    count "pt/decoded_steps" (Array.length r.steps);
    count "pt/lost_bytes" r.lost_bytes;
    count "pt/desyncs" (if r.desynced then 1 else 0);
    count "pt/thread_ended" (if r.thread_ended then 1 else 0);
    observe "pt/snapshot_bytes" (float_of_int snapshot_bytes)
  in
  match into with
  | Some m ->
    (* A private (typically pool-worker) registry: record directly, no
       ambient state touched, so this is safe off the main domain. *)
    record
      (fun name n -> Obs.Metrics.add (Obs.Metrics.counter m name) n)
      (fun name v -> Obs.Metrics.observe (Obs.Metrics.histogram m name) v)
  | None ->
    if Obs.Scope.enabled () then record Obs.Scope.count Obs.Scope.observe

let decode m ~config ?tail_stop snapshot =
  let r = decode_raw m ~config ?tail_stop snapshot in
  record_metrics r ~snapshot_bytes:(Bytes.length snapshot);
  r
