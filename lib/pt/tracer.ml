module Ringbuf = Snorlax_util.Ringbuf

type thread_state = {
  ring : Ringbuf.t;
  mutable last_ctc : int;  (** absolute coarse-clock value last emitted *)
  mutable last_timing_ns : int;
  mutable bytes_since_psb : int;
      (** charged (v1-equivalent) bytes, not ring bytes — see below *)
  mutable started : bool;
  mutable pend_bits : int;  (** TNT bits awaiting a packed packet *)
  mutable pend_count : int;
}

type t = {
  config : Config.t;
  threads : (int, thread_state) Hashtbl.t;
  scratch : Buffer.t;
  timing_scratch : Buffer.t;
  mutable bytes_written : int;
  mutable events_seen : int;
  mutable timing_packets : int;
}

let create ~config =
  {
    config;
    threads = Hashtbl.create 16;
    scratch = Buffer.create 64;
    timing_scratch = Buffer.create 16;
    bytes_written = 0;
    events_seen = 0;
    timing_packets = 0;
  }

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> ts
  | None ->
    let ts =
      {
        ring = Ringbuf.create ~capacity:t.config.Config.buffer_size;
        last_ctc = 0;
        last_timing_ns = 0;
        bytes_since_psb = 0;
        started = false;
        pend_bits = 0;
        pend_count = 0;
      }
    in
    Hashtbl.add t.threads tid ts;
    ts

(* Consecutive branch outcomes accumulate per thread and hit the ring as
   one packed multi-bit TNT.  The packed run must sit where its first bit
   was taken, so any packet that is not a TNT bit — PSB, timing, TIP —
   forces a flush first; a run therefore never spans a timing packet and
   the expanded stream is position-for-position the v1 per-bit stream.

   Cost accounting is deliberately NOT the ring byte count: the tracing
   tax fed back into the simulated clock (and [bytes_since_psb], which
   paces PSBs) charges each TNT bit the 2 wire bytes of the v1 per-bit
   packet at the event that took the branch.  Charged bytes are therefore
   bit-identical to v1 — same clock evolution, same interleavings, same
   PSB cadence — while the ring holds the (smaller) packed encoding. *)
let flush_pending t ts =
  if ts.pend_count > 0 then begin
    Packet.encode t.scratch
      (Packet.Tnt_packed { bits = ts.pend_bits; count = ts.pend_count });
    ts.pend_bits <- 0;
    ts.pend_count <- 0
  end

(* A TMA re-sync replaces MTC when the coarse counter jumped too far for
   its 8-bit payload to be unambiguous. *)
let mtc_wrap_guard = 200

(* [last_timing_ns] mirrors the clock a decoder reconstructs, so CYC
   deltas are relative to the decoder's state, not the raw event times —
   otherwise an MTC followed by a CYC would double-count the gap. *)
let emit_timing t ts ~into ~now_ns =
  let emit p =
    Packet.encode into p;
    t.timing_packets <- t.timing_packets + 1
  in
  (* Returns the decoder clock value after the emitted MTC/TMA, if any.
     The hardware clock ticks MTC through quiet periods too; we model the
     first boundary after the previous activity explicitly (it is what
     bounds the preceding event's upper timestamp to one period) and
     compress the rest of a long gap into a TMA re-sync. *)
  let mtc_like ~period =
    let ctc = now_ns / period in
    if ctc > ts.last_ctc then begin
      let jumped = ctc - ts.last_ctc in
      if jumped > 1 then
        emit (Packet.Mtc { ctc = (ts.last_ctc + 1) land 0xff });
      ts.last_ctc <- ctc;
      if jumped > mtc_wrap_guard then begin
        emit (Packet.Tma { tsc = now_ns });
        Some now_ns
      end
      else begin
        emit (Packet.Mtc { ctc = ctc land 0xff });
        Some (ctc * period)
      end
    end
    else None
  in
  match t.config.Config.timing with
  | Config.No_timing -> ()
  | Config.Mtc_only { mtc_period_ns } -> (
    match mtc_like ~period:mtc_period_ns with
    | Some decoder_time -> ts.last_timing_ns <- decoder_time
    | None -> ())
  | Config.Cyc_and_mtc { mtc_period_ns } ->
    (match mtc_like ~period:mtc_period_ns with
    | Some decoder_time -> ts.last_timing_ns <- decoder_time
    | None -> ());
    if now_ns > ts.last_timing_ns then begin
      emit (Packet.Cyc { delta = now_ns - ts.last_timing_ns });
      ts.last_timing_ns <- now_ns
    end

let emit_psb t ts ~now_ns ~pc =
  Packet.encode t.scratch (Packet.Psb { tsc = now_ns });
  Packet.encode t.scratch (Packet.Fup { pc });
  ts.bytes_since_psb <- 0;
  ts.last_timing_ns <- now_ns;
  (match t.config.Config.timing with
  | Config.Cyc_and_mtc { mtc_period_ns } | Config.Mtc_only { mtc_period_ns } ->
    ts.last_ctc <- now_ns / mtc_period_ns
  | Config.No_timing -> ());
  ts.started <- true

let on_control t ~time event =
  t.events_seen <- t.events_seen + 1;
  let now_ns = int_of_float time in
  let tid = Sim.Hooks.control_event_tid event in
  let ts = thread_state t tid in
  Buffer.clear t.scratch;
  (* v1-equivalent bytes for this event: drives the cost model and the
     PSB pacing.  Flushed packed packets are excluded — their bits were
     charged at their own events. *)
  let charged = ref 0 in
  let charge_from len0 = charged := !charged + (Buffer.length t.scratch - len0) in
  (* Stage the event's timing packets in a side buffer: whether any are
     due decides whether the pending TNT run must flush first (a packed
     run cannot span a timing packet), and staging keeps the flush bytes
     physically before the timing bytes in the ring. *)
  let stage_timing () =
    Buffer.clear t.timing_scratch;
    emit_timing t ts ~into:t.timing_scratch ~now_ns;
    Buffer.length t.timing_scratch > 0
  in
  let commit_timing () =
    charged := !charged + Buffer.length t.timing_scratch;
    Buffer.add_buffer t.scratch t.timing_scratch
  in
  (match event with
  | Sim.Hooks.Thread_start { entry_pc; _ } ->
    let len0 = Buffer.length t.scratch in
    emit_psb t ts ~now_ns ~pc:entry_pc;
    charge_from len0
  | Sim.Hooks.Cond_branch { pc; taken; _ } ->
    if ts.started && ts.bytes_since_psb >= t.config.Config.psb_period_bytes
    then begin
      flush_pending t ts;
      let len0 = Buffer.length t.scratch in
      emit_psb t ts ~now_ns ~pc;
      charge_from len0
    end;
    let timing_due = stage_timing () in
    if timing_due then begin
      flush_pending t ts;
      commit_timing ()
    end;
    if ts.pend_count = Packet.tnt_max_bits then flush_pending t ts;
    ts.pend_bits <- ts.pend_bits lor ((if taken then 1 else 0) lsl ts.pend_count);
    ts.pend_count <- ts.pend_count + 1;
    (* The v1 per-bit TNT is header + payload: 2 wire bytes. *)
    charged := !charged + 2
  | Sim.Hooks.Ret_branch { target_pc; _ } ->
    let (_ : bool) = stage_timing () in
    (* A TIP is not a TNT bit: the pending run always flushes here. *)
    flush_pending t ts;
    commit_timing ();
    let len0 = Buffer.length t.scratch in
    (match target_pc with
    | Some pc -> Packet.encode t.scratch (Packet.Tip { pc })
    | None -> Packet.encode t.scratch Packet.Tip_end);
    charge_from len0
  | Sim.Hooks.Thread_exit _ -> ());
  let produced = Buffer.length t.scratch in
  if produced > 0 then begin
    Ringbuf.write_bytes ts.ring (Buffer.to_bytes t.scratch);
    t.bytes_written <- t.bytes_written + produced
  end;
  ts.bytes_since_psb <- ts.bytes_since_psb + !charged;
  let c = t.config.Config.costs in
  c.Config.per_event_ns
  +. (c.Config.per_byte_ns *. float_of_int !charged)
  +. (c.Config.per_thread_ns *. float_of_int (Hashtbl.length t.threads))

let snapshot t =
  (* Pending TNT runs flush to the rings first: a snapshot must expose
     every branch the thread has taken, not hide a partial run. *)
  Hashtbl.iter
    (fun _ ts ->
      if ts.pend_count > 0 then begin
        Buffer.clear t.scratch;
        flush_pending t ts;
        let n = Buffer.length t.scratch in
        Ringbuf.write_bytes ts.ring (Buffer.to_bytes t.scratch);
        t.bytes_written <- t.bytes_written + n
      end)
    t.threads;
  (* Snapshot is the reconciliation point, so the hot per-event path never
     touches the ambient scope: cumulative totals are published here. *)
  if Obs.Scope.enabled () then begin
    Obs.Scope.set_gauge "pt/bytes_written" (float_of_int t.bytes_written);
    Obs.Scope.set_gauge "pt/events_seen" (float_of_int t.events_seen);
    Obs.Scope.set_gauge "pt/timing_packets" (float_of_int t.timing_packets);
    Obs.Scope.set_gauge "pt/threads" (float_of_int (Hashtbl.length t.threads));
    Obs.Scope.count "pt/snapshots" 1
  end;
  Hashtbl.fold (fun tid ts acc -> (tid, Ringbuf.snapshot ts.ring) :: acc) t.threads []
  |> List.sort compare

let bytes_written t = t.bytes_written
let events_seen t = t.events_seen
let timing_packets t = t.timing_packets
let thread_count t = Hashtbl.length t.threads
