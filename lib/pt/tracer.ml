module Ringbuf = Snorlax_util.Ringbuf

type thread_state = {
  ring : Ringbuf.t;
  mutable last_ctc : int;  (** absolute coarse-clock value last emitted *)
  mutable last_timing_ns : int;
  mutable bytes_since_psb : int;
  mutable started : bool;
}

type t = {
  config : Config.t;
  threads : (int, thread_state) Hashtbl.t;
  scratch : Buffer.t;
  mutable bytes_written : int;
  mutable events_seen : int;
  mutable timing_packets : int;
}

let create ~config =
  {
    config;
    threads = Hashtbl.create 16;
    scratch = Buffer.create 64;
    bytes_written = 0;
    events_seen = 0;
    timing_packets = 0;
  }

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> ts
  | None ->
    let ts =
      {
        ring = Ringbuf.create ~capacity:t.config.Config.buffer_size;
        last_ctc = 0;
        last_timing_ns = 0;
        bytes_since_psb = 0;
        started = false;
      }
    in
    Hashtbl.add t.threads tid ts;
    ts

(* A TMA re-sync replaces MTC when the coarse counter jumped too far for
   its 8-bit payload to be unambiguous. *)
let mtc_wrap_guard = 200

(* [last_timing_ns] mirrors the clock a decoder reconstructs, so CYC
   deltas are relative to the decoder's state, not the raw event times —
   otherwise an MTC followed by a CYC would double-count the gap. *)
let emit_timing t ts ~now_ns =
  let emit p =
    Packet.encode t.scratch p;
    t.timing_packets <- t.timing_packets + 1
  in
  (* Returns the decoder clock value after the emitted MTC/TMA, if any.
     The hardware clock ticks MTC through quiet periods too; we model the
     first boundary after the previous activity explicitly (it is what
     bounds the preceding event's upper timestamp to one period) and
     compress the rest of a long gap into a TMA re-sync. *)
  let mtc_like ~period =
    let ctc = now_ns / period in
    if ctc > ts.last_ctc then begin
      let jumped = ctc - ts.last_ctc in
      if jumped > 1 then
        emit (Packet.Mtc { ctc = (ts.last_ctc + 1) land 0xff });
      ts.last_ctc <- ctc;
      if jumped > mtc_wrap_guard then begin
        emit (Packet.Tma { tsc = now_ns });
        Some now_ns
      end
      else begin
        emit (Packet.Mtc { ctc = ctc land 0xff });
        Some (ctc * period)
      end
    end
    else None
  in
  match t.config.Config.timing with
  | Config.No_timing -> ()
  | Config.Mtc_only { mtc_period_ns } -> (
    match mtc_like ~period:mtc_period_ns with
    | Some decoder_time -> ts.last_timing_ns <- decoder_time
    | None -> ())
  | Config.Cyc_and_mtc { mtc_period_ns } ->
    (match mtc_like ~period:mtc_period_ns with
    | Some decoder_time -> ts.last_timing_ns <- decoder_time
    | None -> ());
    if now_ns > ts.last_timing_ns then begin
      emit (Packet.Cyc { delta = now_ns - ts.last_timing_ns });
      ts.last_timing_ns <- now_ns
    end

let emit_psb t ts ~now_ns ~pc =
  Packet.encode t.scratch (Packet.Psb { tsc = now_ns });
  Packet.encode t.scratch (Packet.Fup { pc });
  ts.bytes_since_psb <- 0;
  ts.last_timing_ns <- now_ns;
  (match t.config.Config.timing with
  | Config.Cyc_and_mtc { mtc_period_ns } | Config.Mtc_only { mtc_period_ns } ->
    ts.last_ctc <- now_ns / mtc_period_ns
  | Config.No_timing -> ());
  ts.started <- true

let on_control t ~time event =
  t.events_seen <- t.events_seen + 1;
  let now_ns = int_of_float time in
  let tid = Sim.Hooks.control_event_tid event in
  let ts = thread_state t tid in
  Buffer.clear t.scratch;
  (match event with
  | Sim.Hooks.Thread_start { entry_pc; _ } -> emit_psb t ts ~now_ns ~pc:entry_pc
  | Sim.Hooks.Cond_branch { pc; taken; _ } ->
    if
      ts.started
      && ts.bytes_since_psb >= t.config.Config.psb_period_bytes
    then emit_psb t ts ~now_ns ~pc;
    emit_timing t ts ~now_ns;
    Packet.encode t.scratch (Packet.Tnt taken)
  | Sim.Hooks.Ret_branch { target_pc; _ } -> (
    emit_timing t ts ~now_ns;
    match target_pc with
    | Some pc -> Packet.encode t.scratch (Packet.Tip { pc })
    | None -> Packet.encode t.scratch Packet.Tip_end)
  | Sim.Hooks.Thread_exit _ -> ());
  let produced = Buffer.length t.scratch in
  if produced > 0 then begin
    Ringbuf.write_bytes ts.ring (Buffer.to_bytes t.scratch);
    ts.bytes_since_psb <- ts.bytes_since_psb + produced;
    t.bytes_written <- t.bytes_written + produced
  end;
  let c = t.config.Config.costs in
  c.Config.per_event_ns
  +. (c.Config.per_byte_ns *. float_of_int produced)
  +. (c.Config.per_thread_ns *. float_of_int (Hashtbl.length t.threads))

let snapshot t =
  (* Snapshot is the reconciliation point, so the hot per-event path never
     touches the ambient scope: cumulative totals are published here. *)
  if Obs.Scope.enabled () then begin
    Obs.Scope.set_gauge "pt/bytes_written" (float_of_int t.bytes_written);
    Obs.Scope.set_gauge "pt/events_seen" (float_of_int t.events_seen);
    Obs.Scope.set_gauge "pt/timing_packets" (float_of_int t.timing_packets);
    Obs.Scope.set_gauge "pt/threads" (float_of_int (Hashtbl.length t.threads));
    Obs.Scope.count "pt/snapshots" 1
  end;
  Hashtbl.fold (fun tid ts acc -> (tid, Ringbuf.snapshot ts.ring) :: acc) t.threads []
  |> List.sort compare

let bytes_written t = t.bytes_written
let events_seen t = t.events_seen
let timing_packets t = t.timing_packets
let thread_count t = Hashtbl.length t.threads
