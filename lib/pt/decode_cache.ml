type entry = { result : Decoder.result; mutable last_used : int }

type t = {
  mutable cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;  (* logical clock for LRU recency *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m : Mutex.t;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ?(capacity = 256) () =
  if capacity < 0 then invalid_arg "Decode_cache.create: negative capacity";
  {
    cap = capacity;
    tbl = Hashtbl.create (min 64 (max 1 capacity));
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    m = Mutex.create ();
  }

let shared = create ()

let capacity t = t.cap

let enabled t = t.cap > 0

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Linear scan for the LRU entry; capacities are small (hundreds), and the
   scan only runs on eviction, never on a hit. *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when age <= e.last_used -> ()
      | _ -> victim := Some (k, e.last_used))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1;
    Obs.Scope.count "decode_cache/evictions" 1
  | None -> ()

let set_capacity t n =
  if n < 0 then invalid_arg "Decode_cache.set_capacity: negative capacity";
  locked t @@ fun () ->
  t.cap <- n;
  while Hashtbl.length t.tbl > n do
    evict_one t
  done

(* The snapshot dominates the key material; hashing it in place and
   folding the digest into a small metadata header avoids copying every
   ring snapshot through a fresh Buffer on each probe. *)
let key m ~config ?tail_stop snapshot =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Lir.Irmod.name m);
  Buffer.add_char buf '\x00';
  let add_int i = Buffer.add_string buf (string_of_int i); Buffer.add_char buf ';' in
  add_int (Lir.Irmod.instr_count m);
  add_int config.Config.buffer_size;
  add_int config.Config.psb_period_bytes;
  let tag, period = Config.timing_code config.Config.timing in
  add_int tag;
  add_int period;
  (match tail_stop with
  | None -> Buffer.add_char buf 'n'
  | Some (pc, t_hi) ->
    Buffer.add_char buf 's';
    add_int pc;
    add_int t_hi);
  Buffer.add_string buf (Digest.bytes snapshot);
  Digest.string (Buffer.contents buf)

let find t k =
  locked t @@ fun () ->
  if t.cap = 0 then begin
    t.misses <- t.misses + 1;
    Obs.Scope.count "decode_cache/misses" 1;
    None
  end
  else
    match Hashtbl.find_opt t.tbl k with
    | Some e ->
      t.tick <- t.tick + 1;
      e.last_used <- t.tick;
      t.hits <- t.hits + 1;
      Obs.Scope.count "decode_cache/hits" 1;
      Some e.result
    | None ->
      t.misses <- t.misses + 1;
      Obs.Scope.count "decode_cache/misses" 1;
      None

let add t k result =
  locked t @@ fun () ->
  if t.cap > 0 then begin
    t.tick <- t.tick + 1;
    (match Hashtbl.find_opt t.tbl k with
    | Some e -> e.last_used <- t.tick
    | None ->
      while Hashtbl.length t.tbl >= t.cap do
        evict_one t
      done;
      Hashtbl.add t.tbl k { result; last_used = t.tick })
  end

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.tbl;
  }

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.tbl;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
