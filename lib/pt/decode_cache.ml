type entry = { result : Decoder.result; mutable last_used : int }

(* One lock-striped segment: a private hash table, LRU clock and counter
   set behind its own mutex.  Keys map to segments by digest hash, so
   concurrent probes from shard/pool domains only contend when they land
   on the same stripe — the single global mutex the fleet's incremental
   diagnosis used to serialize on is gone. *)
type seg = {
  tbl : (string, entry) Hashtbl.t;
  mutable seg_cap : int;
  mutable tick : int;  (* logical clock for LRU recency, per segment *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m : Mutex.t;
}

type t = {
  mutable cap : int;  (* total capacity, split across segments *)
  segs : seg array;  (* length fixed at creation *)
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

(* Small caches stay single-segment so their LRU order is exact and
   observable (the unit tests rely on it); larger ones stripe up to 16
   ways with at least 16 slots per stripe. *)
let segments_for capacity = if capacity < 64 then 1 else min 16 (capacity / 16)

let make_seg cap =
  {
    tbl = Hashtbl.create (min 64 (max 1 cap));
    seg_cap = cap;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    m = Mutex.create ();
  }

(* Segment [i] of [k] gets slot [cap/k + 1] while the remainder lasts, so
   the per-segment capacities always sum to the requested total. *)
let seg_cap_of ~cap ~nsegs i = (cap / nsegs) + (if i < cap mod nsegs then 1 else 0)

let create ?(capacity = 256) () =
  if capacity < 0 then invalid_arg "Decode_cache.create: negative capacity";
  let nsegs = segments_for capacity in
  {
    cap = capacity;
    segs = Array.init nsegs (fun i -> make_seg (seg_cap_of ~cap:capacity ~nsegs i));
  }

let shared = create ()

let capacity t = t.cap

let enabled t = t.cap > 0

let segments t = Array.length t.segs

let seg_of t k = t.segs.(Hashtbl.hash k mod Array.length t.segs)

let locked s f =
  Mutex.lock s.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.m) f

(* Linear scan for the segment's LRU entry; segment capacities are small
   (tens to hundreds), and the scan only runs on eviction, never on a
   hit.  Called with the segment lock held. *)
let evict_one s =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when age <= e.last_used -> ()
      | _ -> victim := Some (k, e.last_used))
    s.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove s.tbl k;
    s.evictions <- s.evictions + 1;
    Obs.Scope.count "decode_cache/evictions" 1
  | None -> ()

let set_capacity t n =
  if n < 0 then invalid_arg "Decode_cache.set_capacity: negative capacity";
  t.cap <- n;
  let nsegs = Array.length t.segs in
  Array.iteri
    (fun i s ->
      locked s @@ fun () ->
      s.seg_cap <- seg_cap_of ~cap:n ~nsegs i;
      while Hashtbl.length s.tbl > s.seg_cap do
        evict_one s
      done)
    t.segs

(* The snapshot dominates the key material; hashing it in place and
   folding the digest into a small metadata header avoids copying every
   ring snapshot through a fresh Buffer on each probe. *)
let key m ~config ?tail_stop snapshot =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Lir.Irmod.name m);
  Buffer.add_char buf '\x00';
  let add_int i = Buffer.add_string buf (string_of_int i); Buffer.add_char buf ';' in
  add_int (Lir.Irmod.instr_count m);
  add_int config.Config.buffer_size;
  add_int config.Config.psb_period_bytes;
  let tag, period = Config.timing_code config.Config.timing in
  add_int tag;
  add_int period;
  (match tail_stop with
  | None -> Buffer.add_char buf 'n'
  | Some (pc, t_hi) ->
    Buffer.add_char buf 's';
    add_int pc;
    add_int t_hi);
  Buffer.add_string buf (Digest.bytes snapshot);
  Digest.string (Buffer.contents buf)

let find t k =
  let s = seg_of t k in
  locked s @@ fun () ->
  match Hashtbl.find_opt s.tbl k with
  | Some e when s.seg_cap > 0 ->
    s.tick <- s.tick + 1;
    e.last_used <- s.tick;
    s.hits <- s.hits + 1;
    Obs.Scope.count "decode_cache/hits" 1;
    Some e.result
  | Some _ | None ->
    s.misses <- s.misses + 1;
    Obs.Scope.count "decode_cache/misses" 1;
    None

let add t k result =
  let s = seg_of t k in
  locked s @@ fun () ->
  if s.seg_cap > 0 then begin
    s.tick <- s.tick + 1;
    match Hashtbl.find_opt s.tbl k with
    | Some e -> e.last_used <- s.tick
    | None ->
      while Hashtbl.length s.tbl >= s.seg_cap do
        evict_one s
      done;
      Hashtbl.add s.tbl k { result; last_used = s.tick }
  end

let seg_stats s =
  locked s @@ fun () ->
  {
    hits = s.hits;
    misses = s.misses;
    evictions = s.evictions;
    entries = Hashtbl.length s.tbl;
  }

let segment_stats t = Array.map seg_stats t.segs

let stats t =
  Array.fold_left
    (fun acc s ->
      let st = seg_stats s in
      {
        hits = acc.hits + st.hits;
        misses = acc.misses + st.misses;
        evictions = acc.evictions + st.evictions;
        entries = acc.entries + st.entries;
      })
    { hits = 0; misses = 0; evictions = 0; entries = 0 }
    t.segs

let clear t =
  Array.iter
    (fun s ->
      locked s @@ fun () ->
      Hashtbl.reset s.tbl;
      s.tick <- 0;
      s.hits <- 0;
      s.misses <- 0;
      s.evictions <- 0)
    t.segs
