(** The fleet wire format: what an endpoint actually puts on the network
    when it ships a failure (or watchpoint-triggered success) report to
    the diagnosis server.

    One encoded packet is a version byte followed by a varint-packed
    envelope: endpoint id, reproduction seed, bug id, the tracer
    configuration the rings were produced under (so the server decodes
    each endpoint's traces with the right timing parameters), and the
    report payload itself — including every per-thread ring snapshot as
    raw bytes.  Everything length-delimited, no padding: a pbzip2 failing
    report is a few hundred bytes on the wire.

    [decode] is total: truncated buffers, bad version bytes, unknown
    tags and trailing garbage all return [Error], never raise — corrupt
    network input must not take the collector down. *)

type payload =
  | Failing of Snorlax_core.Report.failing_report
  | Success of Snorlax_core.Report.success_report

type provenance = {
  runs : int;
      (** executions the endpoint performed before shipping this report *)
  sync_ops : int;
      (** synchronization operations observed in the reported run *)
  sync_digest : int;
      (** Lumos-style qualifier material: a digest of the run's recent
          sync-op history (kind, tid, static iid of the last operations
          before the report fired), non-negative *)
}
(** Version-2 provenance tags: causal metadata about the reported run
    that the collector mines for features discriminating failing from
    successful reports.  Endpoint id and tracer config knobs already
    travel in the envelope proper. *)

type envelope = {
  endpoint : int;  (** which simulated client produced this *)
  seed : int;  (** the scheduler seed of the reported execution *)
  bug_id : string;  (** which corpus scenario the endpoint was running *)
  config : Pt.Config.t;
      (** ring/timing parameters of the endpoint's tracer; the decode side
          reconstructs the cost model as {!Pt.Config.default_costs} (costs
          only matter client-side and are not shipped) *)
  prov : provenance option;
      (** [None] for packets from v1 endpoints, which predate provenance *)
  payload : payload;
}

val version : int
(** Current format version (2); the first byte of every packet. *)

val encode : envelope -> bytes

val encode_v1 : envelope -> bytes
(** The previous (version-1) format, which has no provenance block —
    what a not-yet-upgraded endpoint puts on the wire.  Kept so the
    back-compat decode path stays exercised. *)

val decode : bytes -> (envelope, string) result
(** Round-trips [encode]; also accepts version-1 packets, which decode
    with [prov = None].  [Error] (with a reason) on any malformed
    input.  A packet with bytes beyond the envelope is malformed. *)
