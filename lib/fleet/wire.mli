(** The fleet wire format: what an endpoint actually puts on the network
    when it ships a failure (or watchpoint-triggered success) report to
    the diagnosis server.

    One encoded packet is a version byte followed by a varint-packed
    envelope: endpoint id, reproduction seed, bug id, the tracer
    configuration the rings were produced under (so the server decodes
    each endpoint's traces with the right timing parameters), and the
    report payload itself — including every per-thread ring snapshot as
    raw bytes.  Everything length-delimited, no padding: a pbzip2 failing
    report is a few hundred bytes on the wire.

    [decode] is total: truncated buffers, bad version bytes, unknown
    tags and trailing garbage all return [Error], never raise — corrupt
    network input must not take the collector down. *)

type payload =
  | Failing of Snorlax_core.Report.failing_report
  | Success of Snorlax_core.Report.success_report

type envelope = {
  endpoint : int;  (** which simulated client produced this *)
  seed : int;  (** the scheduler seed of the reported execution *)
  bug_id : string;  (** which corpus scenario the endpoint was running *)
  config : Pt.Config.t;
      (** ring/timing parameters of the endpoint's tracer; the decode side
          reconstructs the cost model as {!Pt.Config.default_costs} (costs
          only matter client-side and are not shipped) *)
  payload : payload;
}

val version : int
(** Current format version; the first byte of every packet. *)

val encode : envelope -> bytes

val decode : bytes -> (envelope, string) result
(** Round-trips [encode]; [Error] (with a reason) on any malformed
    input.  A packet with bytes beyond the envelope is malformed. *)
