module Core = Snorlax_core

type bucket_row = {
  bug_id : string;
  signature : string;
  endpoints_hit : int;
  failing_kept : int;
  failing_dropped : int;
  success_kept : int;
  success_dropped : int;
  wire_bytes : int;
  qualifiers : string list;
  top_pattern : string option;
  top_describe : string option;
  f1 : float;
  root_cause_match : bool;
  ordering_accuracy : float;
  diagnosis_ns : float;
}

type summary = {
  endpoints : int;
  scenarios : int;
  shipped : int;
  wire_bytes : int;
  decode_errors : int;
  unrouted : int;
  bucket_count : int;
  dedup_ratio : float;
  rows : bucket_row list;
  collect_ns : float;
  diagnosis_ns : float;
  total_ns : float;
  latency_p50_ns : float;
  latency_p99_ns : float;
}

type progress = {
  tick_endpoint : int;
  tick_bug : string;
  tick_shipped : int;
  tick_elapsed_ns : float;
}

let now = Obs.Span.wall_clock_ns

(* The [--watch] snapshot line: fleet throughput plus the ingest/decode
   stage percentiles read back from the ambient registry mid-run.  Lives
   here (not in bin/) so the formatting is unit-testable. *)
let watch_line (p : progress) =
  let secs = p.tick_elapsed_ns /. 1e9 in
  let rate =
    if secs > 0.0 then float_of_int p.tick_shipped /. secs else 0.0
  in
  let counter name =
    match Obs.Scope.current () with
    | Some c ->
      Option.value ~default:0 (Obs.Metrics.find_counter c.Obs.Scope.metrics name)
    | None -> 0
  in
  let stage name =
    match Obs.Scope.current () with
    | None -> "-"
    | Some c -> (
      match Obs.Metrics.find_histogram c.Obs.Scope.metrics name with
      | Some (h : Obs.Metrics.hstats) when h.Obs.Metrics.count > 0 ->
        Printf.sprintf "%.0f/%.0fus"
          (h.Obs.Metrics.p50 /. 1e3)
          (h.Obs.Metrics.p99 /. 1e3)
      | _ -> "-")
  in
  let failing = counter "fleet/failing_kept" + counter "fleet/failing_dropped" in
  let buckets = counter "fleet/buckets" in
  let dedup =
    if buckets = 0 then 0.0 else float_of_int failing /. float_of_int buckets
  in
  Printf.sprintf
    "[watch] %s ep%d: %d packets (%.0f/s), dedup %.1f:1, ingest p50/p99 %s, \
     decode p50/p99 %s"
    p.tick_bug p.tick_endpoint p.tick_shipped rate dedup
    (stage "fleet/ingest_ns")
    (stage "pt/decode_ns")

let diagnose_bucket collector latency_hist (b : Collector.bucket) =
  let t0 = now () in
  let res = Collector.diagnose collector b in
  let t_done = now () in
  let dt = t_done -. t0 in
  (* Every report that waited in this bucket is only now actionable:
     its report->diagnosis latency closes at this instant. *)
  List.iter
    (fun arrival ->
      let l = t_done -. arrival in
      Obs.Metrics.observe latency_hist l;
      Obs.Scope.observe "fleet/report_to_diagnosis_ns" l)
    (Collector.arrivals b);
  let built = Collector.built collector b in
  let gt = built.Corpus.Bug.ground_truth in
  let top_pattern, top_describe, f1, rc_match, a_o =
    match res.Core.Diagnosis.top with
    | None -> (None, None, 0.0, false, 0.0)
    | Some top ->
      let p = top.Core.Statistics.pattern in
      ( Some (Core.Patterns.id p),
        Some (Core.Patterns.describe built.Corpus.Bug.m p),
        top.Core.Statistics.f1,
        Core.Accuracy.root_cause_match ~diagnosed:p ~ground_truth:gt,
        Core.Accuracy.ordering_accuracy ~diagnosed:p ~ground_truth:gt )
  in
  {
    bug_id = b.Collector.signature.Signature.bug_id;
    signature = Signature.to_string b.Collector.signature;
    endpoints_hit = List.length b.Collector.endpoints;
    failing_kept = Collector.failing_kept b;
    failing_dropped = Collector.failing_dropped b;
    success_kept = Collector.success_kept b;
    success_dropped = Collector.success_dropped b;
    wire_bytes = b.Collector.wire_bytes;
    qualifiers =
      List.map Collector.qualifier_to_string (Collector.qualifiers b);
    top_pattern;
    top_describe;
    f1;
    root_cause_match = rc_match;
    ordering_accuracy = a_o;
    diagnosis_ns = dt;
  }

let run ?policy ?config ?tick ~endpoints bugs =
  if endpoints < 1 then invalid_arg "Deploy.run: endpoints < 1";
  Obs.Scope.with_span "fleet"
    ~args:[ ("endpoints", Obs.Span.Int endpoints) ]
  @@ fun () ->
  let t0 = now () in
  let collector = Collector.create ?policy () in
  (* Latency accounting lives in a private histogram so the summary's
     p50/p99 exist even when no ambient scope is enabled (the bench path
     reads them from BENCH_fleet.json). *)
  let latency_reg = Obs.Metrics.create () in
  let latency_hist = Obs.Metrics.histogram latency_reg "latency_ns" in
  let shipped = ref 0 in
  List.iter
    (fun bug ->
      for e = 0 to endpoints - 1 do
        let s = Endpoint.run ~bug ~endpoint:e ?config () in
        List.iter
          (fun packet ->
            incr shipped;
            (* Malformed packets are counted by the collector; a fleet
               run keeps going when one endpoint ships garbage. *)
            ignore (Collector.ingest collector packet))
          s.Endpoint.packets;
        match tick with
        | Some f ->
          f
            {
              tick_endpoint = e;
              tick_bug = bug.Corpus.Bug.id;
              tick_shipped = !shipped;
              tick_elapsed_ns = now () -. t0;
            }
        | None -> ()
      done)
    bugs;
  let t_collected = now () in
  let rows =
    List.map
      (diagnose_bucket collector latency_hist)
      (Collector.buckets collector)
  in
  let t_done = now () in
  let totals = Collector.totals collector in
  let bucket_count = List.length rows in
  let dedup_ratio =
    if bucket_count = 0 then 0.0
    else float_of_int totals.Collector.failing_received /. float_of_int bucket_count
  in
  Obs.Scope.set_gauge "fleet/dedup_ratio" dedup_ratio;
  {
    endpoints;
    scenarios = List.length bugs;
    shipped = !shipped;
    wire_bytes = totals.Collector.wire_bytes;
    decode_errors = totals.Collector.decode_errors;
    unrouted = totals.Collector.unrouted;
    bucket_count;
    dedup_ratio;
    rows;
    collect_ns = t_collected -. t0;
    diagnosis_ns =
      List.fold_left (fun a (r : bucket_row) -> a +. r.diagnosis_ns) 0.0 rows;
    total_ns = t_done -. t0;
    latency_p50_ns = Obs.Metrics.percentile latency_hist ~p:50.0;
    latency_p99_ns = Obs.Metrics.percentile latency_hist ~p:99.0;
  }
