(** One simulated user endpoint: runs a corpus scenario under the PT
    driver with its own seed range until the bug manifests (or not),
    gathers the watchpoint-triggered successful traces, and serializes
    everything through {!Wire} — the bytes this module returns are
    exactly what would cross the network. *)

type shipment = {
  endpoint : int;
  packets : bytes list;
      (** encoded {!Wire.envelope}s, failing reports first — the order
          the driver would ship them in *)
  runs : int;  (** executions this endpoint performed *)
  reproduced : bool;  (** false when the bug never manifested here *)
}

val seed_stride : int
(** Seed-space distance between endpoints; larger than the runner's
    default retry budget so endpoint schedules never overlap. *)

val run :
  bug:Corpus.Bug.t ->
  endpoint:int ->
  ?config:Pt.Config.t ->
  ?failing_count:int ->
  ?success_per_failing:int ->
  unit ->
  shipment
(** Simulate one endpoint.  [failing_count] (default 1) failing reports
    and [success_per_failing] (default 10, the paper's cap) successes per
    failing are collected before encoding.  A shipment with [reproduced =
    false] carries no packets: an endpoint that never failed has nothing
    to report (its successes were never requested by a watchpoint). *)
