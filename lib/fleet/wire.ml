module Report = Snorlax_core.Report
module Varint = Snorlax_util.Varint

type payload =
  | Failing of Report.failing_report
  | Success of Report.success_report

type provenance = {
  runs : int;
  sync_ops : int;
  sync_digest : int;
}

type envelope = {
  endpoint : int;
  seed : int;
  bug_id : string;
  config : Pt.Config.t;
  prov : provenance option;
  payload : payload;
}

let version = 2

(* --- encoding ----------------------------------------------------------- *)

(* Tags and lengths are unsigned varints (structurally non-negative);
   report field values are zig-zag signed so encoding is total whatever
   the simulator put in the record. *)

let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let uw = Varint.write_unsigned
let sw = Varint.write_signed

let strw buf s =
  uw buf (String.length s);
  Buffer.add_string buf s

let tracesw buf traces =
  uw buf (List.length traces);
  List.iter
    (fun (tid, b) ->
      sw buf tid;
      uw buf (Bytes.length b);
      Buffer.add_bytes buf b)
    traces

let crash_kind_tag = function
  | Report.Bad_pointer -> 0
  | Report.Use_after_free -> 1
  | Report.Assertion -> 2

let encode_with ~version:v e =
  let buf = Buffer.create 256 in
  u8 buf v;
  uw buf e.endpoint;
  sw buf e.seed;
  strw buf e.bug_id;
  uw buf e.config.Pt.Config.buffer_size;
  let tag, period = Pt.Config.timing_code e.config.Pt.Config.timing in
  uw buf tag;
  uw buf period;
  uw buf e.config.Pt.Config.psb_period_bytes;
  (* The provenance block is what version 2 added; a v1 packet simply
     does not carry one.  Values are zig-zag signed like every other
     report field, so encoding stays total. *)
  if v >= 2 then (
    match e.prov with
    | None -> u8 buf 0
    | Some p ->
      u8 buf 1;
      sw buf p.runs;
      sw buf p.sync_ops;
      sw buf p.sync_digest);
  (match e.payload with
  | Failing r ->
    u8 buf 0;
    (match r.Report.info with
    | Report.Crash_info { failing_iid; crash_kind } ->
      uw buf 0;
      sw buf failing_iid;
      uw buf (crash_kind_tag crash_kind)
    | Report.Deadlock_info { blocked } ->
      uw buf 1;
      uw buf (List.length blocked);
      List.iter
        (fun (tid, iid) ->
          sw buf tid;
          sw buf iid)
        blocked);
    sw buf r.Report.failing_tid;
    sw buf r.Report.failure_time_ns;
    tracesw buf r.Report.traces
  | Success r ->
    u8 buf 1;
    sw buf r.Report.trigger_time_ns;
    sw buf r.Report.trigger_tid;
    sw buf r.Report.trigger_pc;
    tracesw buf r.Report.s_traces);
  Buffer.to_bytes buf

let encode e = encode_with ~version e

let encode_v1 e = encode_with ~version:1 e

(* --- decoding ----------------------------------------------------------- *)

exception Corrupt of string

type cursor = { buf : bytes; mutable pos : int }

let corrupt msg = raise (Corrupt msg)

let read_u8 c =
  if c.pos >= Bytes.length c.buf then corrupt "truncated";
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let read_uint c =
  match Varint.try_read_unsigned c.buf ~pos:c.pos with
  | None -> corrupt "truncated varint"
  | Some (v, next) ->
    c.pos <- next;
    v

let read_sint c =
  match Varint.try_read_signed c.buf ~pos:c.pos with
  | None -> corrupt "truncated varint"
  | Some (v, next) ->
    c.pos <- next;
    v

(* [n > length - pos] rather than [pos + n > length]: the length field of
   corrupt input can be near [max_int], and the addition must not wrap. *)
let read_raw c n =
  if n < 0 || n > Bytes.length c.buf - c.pos then corrupt "truncated bytes";
  let b = Bytes.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  b

let read_str c = Bytes.to_string (read_raw c (read_uint c))

let read_list c read_elt =
  let n = read_uint c in
  if n < 0 then corrupt "negative count";
  List.init n (fun _ -> read_elt c)

let read_traces c =
  read_list c (fun c ->
      let tid = read_sint c in
      let len = read_uint c in
      (tid, read_raw c len))

let read_crash_kind c =
  match read_uint c with
  | 0 -> Report.Bad_pointer
  | 1 -> Report.Use_after_free
  | 2 -> Report.Assertion
  | n -> corrupt (Printf.sprintf "unknown crash kind %d" n)

let read_info c =
  match read_uint c with
  | 0 ->
    let failing_iid = read_sint c in
    let crash_kind = read_crash_kind c in
    Report.Crash_info { failing_iid; crash_kind }
  | 1 ->
    let blocked =
      read_list c (fun c ->
          let tid = read_sint c in
          let iid = read_sint c in
          (tid, iid))
    in
    Report.Deadlock_info { blocked }
  | n -> corrupt (Printf.sprintf "unknown failure info tag %d" n)

let read_config c =
  let buffer_size = read_uint c in
  let tag = read_uint c in
  let period = read_uint c in
  let psb_period_bytes = read_uint c in
  match Pt.Config.timing_of_code ~tag ~period with
  | None -> corrupt (Printf.sprintf "unknown timing mode %d/%d" tag period)
  | Some timing ->
    {
      Pt.Config.buffer_size;
      timing;
      psb_period_bytes;
      costs = Pt.Config.default_costs;
    }

let read_payload c =
  match read_u8 c with
  | 0 ->
    let info = read_info c in
    let failing_tid = read_sint c in
    let failure_time_ns = read_sint c in
    let traces = read_traces c in
    Failing { Report.info; failing_tid; failure_time_ns; traces }
  | 1 ->
    let trigger_time_ns = read_sint c in
    let trigger_tid = read_sint c in
    let trigger_pc = read_sint c in
    let s_traces = read_traces c in
    Success { Report.s_traces; trigger_time_ns; trigger_tid; trigger_pc }
  | n -> corrupt (Printf.sprintf "unknown payload tag %d" n)

let read_prov c =
  match read_u8 c with
  | 0 -> None
  | 1 ->
    let runs = read_sint c in
    let sync_ops = read_sint c in
    let sync_digest = read_sint c in
    Some { runs; sync_ops; sync_digest }
  | n -> corrupt (Printf.sprintf "unknown provenance tag %d" n)

let decode b =
  let c = { buf = b; pos = 0 } in
  match
    let v = read_u8 c in
    if v <> 1 && v <> version then
      corrupt (Printf.sprintf "version %d (expected 1..%d)" v version);
    let endpoint = read_uint c in
    let seed = read_sint c in
    let bug_id = read_str c in
    let config = read_config c in
    (* v1 predates provenance: such packets decode with [prov = None]. *)
    let prov = if v >= 2 then read_prov c else None in
    let payload = read_payload c in
    if c.pos <> Bytes.length b then corrupt "trailing garbage";
    { endpoint; seed; bug_id; config; prov; payload }
  with
  | e -> Ok e
  | exception Corrupt msg -> Error msg
  | exception e -> Error (Printexc.to_string e)
