(** Crash signatures — the dedup key of the fleet collector.

    Ubuntu's Error Tracker and Windows Error Reporting both bucket the
    flood of in-production failure reports by a signature derived from
    the crash site before any human (or any expensive analysis) looks at
    them.  The fleet collector does the same: the failure class, the
    failing pc, and the tail of block entries the failing thread's ring
    snapshot decodes to (a control-flow "stack") — so the same bug hit
    by a thousand endpoints lands in one bucket, and two distinct bugs
    in the same program land in two. *)

type t = {
  bug_id : string;
  kind : string;  (** {!Snorlax_core.Report.kind_label} *)
  failing_pc : int;  (** pc of the anchor instruction *)
  block_stack : int list;
      (** the last {!stack_depth} block-entry pcs the failing thread
          executed, oldest first; empty when its ring did not survive *)
}

val stack_depth : int
(** How many trailing block entries the signature keeps (8). *)

val of_failing :
  Lir.Irmod.t ->
  config:Pt.Config.t ->
  bug_id:string ->
  Snorlax_core.Report.failing_report ->
  (t, string) result
(** Compute the signature server-side from a decoded wire report.
    [Error] when the report references an instruction the module does not
    contain (a corrupt or mismatched report). *)

val key : t -> string
(** Stable bucketing key; equal signatures have equal keys. *)

val to_string : t -> string
(** Short human form for tables, e.g. ["assert@0x2a4 via 0x280>0x29c"]. *)
