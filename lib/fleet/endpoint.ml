type shipment = {
  endpoint : int;
  packets : bytes list;
  runs : int;
  reproduced : bool;
}

(* Runner.collect's default retry budget is 5000 seeds; keep endpoint
   seed ranges disjoint with room to spare. *)
let seed_stride = 10_000

let run ~bug ~endpoint ?(config = Pt.Config.default) ?failing_count
    ?success_per_failing () =
  Obs.Scope.with_span
    ("fleet/endpoint-" ^ string_of_int endpoint)
    ~args:[ ("bug", Obs.Span.Str bug.Corpus.Bug.id) ]
  @@ fun () ->
  let seed_base = 1 + (endpoint * seed_stride) in
  Obs.Scope.count "fleet/endpoints" 1;
  match
    Corpus.Runner.collect bug ~pt_config:config ?failing_count
      ?success_per_failing ~seed_base ()
  with
  | Error _ ->
    Obs.Scope.count "fleet/endpoints_quiet" 1;
    { endpoint; packets = []; runs = 0; reproduced = false }
  | Ok c ->
    let envelope seed payload =
      {
        Wire.endpoint;
        seed;
        bug_id = bug.Corpus.Bug.id;
        config;
        payload;
      }
    in
    let failing =
      List.map2
        (fun r seed -> Wire.encode (envelope seed (Wire.Failing r)))
        c.Corpus.Runner.failing c.Corpus.Runner.failing_seeds
    in
    let successful =
      List.map2
        (fun r seed -> Wire.encode (envelope seed (Wire.Success r)))
        c.Corpus.Runner.successful c.Corpus.Runner.success_seeds
    in
    let packets = failing @ successful in
    List.iter
      (fun p -> Obs.Scope.count "fleet/endpoint_wire_bytes" (Bytes.length p))
      packets;
    {
      endpoint;
      packets;
      runs = c.Corpus.Runner.runs_needed;
      reproduced = true;
    }
