type shipment = {
  endpoint : int;
  packets : bytes list;
  runs : int;
  reproduced : bool;
}

(* Runner.collect's default retry budget is 5000 seeds; keep endpoint
   seed ranges disjoint with room to spare. *)
let seed_stride = 10_000

let run ~bug ~endpoint ?(config = Pt.Config.default) ?failing_count
    ?success_per_failing () =
  Obs.Scope.with_span
    ("fleet/endpoint-" ^ string_of_int endpoint)
    ~args:[ ("bug", Obs.Span.Str bug.Corpus.Bug.id) ]
  @@ fun () ->
  let seed_base = 1 + (endpoint * seed_stride) in
  Obs.Scope.count "fleet/endpoints" 1;
  (* The endpoint's flight recorder: every log event during its runs
     lands in this ring too.  It is only materialized — replayed to the
     attached sinks — when a sim failure actually fired here. *)
  let recorder = Obs.Log.Recorder.create ~capacity:64 () in
  match
    Obs.Log.with_recorder recorder (fun () ->
        Corpus.Runner.collect bug ~pt_config:config ?failing_count
          ?success_per_failing ~seed_base ())
  with
  | Error _ ->
    Obs.Scope.count "fleet/endpoints_quiet" 1;
    { endpoint; packets = []; runs = 0; reproduced = false }
  | Ok c ->
    Obs.Log.error "fleet/endpoint_failure"
      ~fields:
        [
          ("endpoint", Obs.Log.Int endpoint);
          ("bug", Obs.Log.Str bug.Corpus.Bug.id);
          ("failing", Obs.Log.Int (List.length c.Corpus.Runner.failing));
          ("runs", Obs.Log.Int c.Corpus.Runner.runs_needed);
        ];
    Obs.Log.replay recorder;
    let envelope seed (sync : Corpus.Runner.sync_profile) payload =
      {
        Wire.endpoint;
        seed;
        bug_id = bug.Corpus.Bug.id;
        config;
        prov =
          Some
            {
              Wire.runs = c.Corpus.Runner.runs_needed;
              sync_ops = sync.Corpus.Runner.sync_ops;
              sync_digest = sync.Corpus.Runner.sync_digest;
            };
        payload;
      }
    in
    let encode2 f reports seeds syncs =
      List.map2
        (fun r (seed, sync) -> Wire.encode (envelope seed sync (f r)))
        reports
        (List.combine seeds syncs)
    in
    let failing =
      encode2
        (fun r -> Wire.Failing r)
        c.Corpus.Runner.failing c.Corpus.Runner.failing_seeds
        c.Corpus.Runner.failing_sync
    in
    let successful =
      encode2
        (fun r -> Wire.Success r)
        c.Corpus.Runner.successful c.Corpus.Runner.success_seeds
        c.Corpus.Runner.success_sync
    in
    let packets = failing @ successful in
    List.iter
      (fun p -> Obs.Scope.count "fleet/endpoint_wire_bytes" (Bytes.length p))
      packets;
    {
      endpoint;
      packets;
      runs = c.Corpus.Runner.runs_needed;
      reproduced = true;
    }
