(** Fleet orchestration: spin up N endpoints per scenario, ship every
    wire packet through the {!Collector}, then run the cross-endpoint
    statistical diagnosis per bucket.  This is the in-production loop of
    Figure 2 at deployment scale — the statistics of §4.5 finally score
    patterns over executions gathered from *different* endpoints. *)

type bucket_row = {
  bug_id : string;
  signature : string;  (** {!Signature.to_string} form *)
  endpoints_hit : int;
  failing_kept : int;
  failing_dropped : int;
  success_kept : int;
  success_dropped : int;
  wire_bytes : int;
  qualifiers : string list;
      (** rendered {!Collector.qualifier}s — provenance features that
          discriminate this bucket's failing reports from its successes *)
  top_pattern : string option;  (** {!Snorlax_core.Patterns.id} of the top scorer *)
  top_describe : string option;  (** its human description *)
  f1 : float;  (** 0 when no pattern scored *)
  root_cause_match : bool;
  ordering_accuracy : float;
  diagnosis_ns : float;
}

type summary = {
  endpoints : int;  (** per scenario *)
  scenarios : int;
  shipped : int;  (** wire packets produced fleet-wide *)
  wire_bytes : int;
  decode_errors : int;
  unrouted : int;
  bucket_count : int;
  dedup_ratio : float;
      (** failing reports received per distinct signature; 1.0 means no
          dedup happened, N means N endpoints collapsed into one bucket *)
  rows : bucket_row list;
  collect_ns : float;  (** endpoint simulation + ingest wall time *)
  diagnosis_ns : float;  (** summed per-bucket diagnosis wall time *)
  total_ns : float;
  latency_p50_ns : float;
      (** median report->diagnosis latency: wall time from a report's
          arrival at the collector to completion of its bucket's
          diagnosis (log-scale-bucket estimate, within 2x) *)
  latency_p99_ns : float;
}

type progress = {
  tick_endpoint : int;
  tick_bug : string;
  tick_shipped : int;  (** packets shipped fleet-wide so far *)
  tick_elapsed_ns : float;
}
(** What [?tick] sees after each endpoint finishes — the hook behind
    [snorlax fleet --watch]. *)

val watch_line : progress -> string
(** The [--watch] snapshot line (no trailing newline): packets shipped,
    throughput, dedup ratio, and the ingest/decode stage p50/p99 read
    from the ambient {!Obs.Scope} registry when one is enabled ("-"
    otherwise). *)

val run :
  ?policy:Collector.policy ->
  ?config:Pt.Config.t ->
  ?tick:(progress -> unit) ->
  endpoints:int ->
  Corpus.Bug.t list ->
  summary
(** Raises [Invalid_argument] when [endpoints < 1]. *)
