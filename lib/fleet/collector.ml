module Report = Snorlax_core.Report

type policy = { max_failing : int; max_success : int; max_pending : int }

let default_policy = { max_failing = 4; max_success = 40; max_pending = 64 }

(* Per-report provenance material for Lumos-style mining: categorical
   features (exact-match) and numeric features (threshold-split).  Kept
   for every *seen* report up to [prov_cap] per class, not just the
   sampled ones — feature statistics improve with fleet volume even when
   the trace payloads are dropped. *)
type prov_sample = {
  s_feats : (string * string) list;
  s_nums : (string * int) list;
}

let prov_cap = 512

(* Arrival stamps (wall-clock ns) of every report routed to the bucket,
   capped; the report->diagnosis latency histogram reads these when the
   bucket is finally diagnosed. *)
let arrival_cap = 1024

type bucket = {
  signature : Signature.t;
  config : Pt.Config.t;
  watch_pcs : int list;
  mutable endpoints : int list;
  (* Kept reports are consed on (newest first) so ingest stays O(1) per
     packet; [failing]/[successful] reverse them back to arrival order. *)
  mutable failing_rev : Report.failing_report list;
  mutable successful_rev : Report.success_report list;
  mutable failing_seen : int;
  mutable success_seen : int;
  mutable wire_bytes : int;
  mutable failing_prov_rev : prov_sample list;
  mutable success_prov_rev : prov_sample list;
  mutable arrivals_rev : float list;
}

let failing b = List.rev b.failing_rev
let successful b = List.rev b.successful_rev
let failing_kept b = List.length b.failing_rev
let success_kept b = List.length b.successful_rev
let failing_dropped b = b.failing_seen - failing_kept b
let success_dropped b = b.success_seen - success_kept b
let arrivals b = List.rev b.arrivals_rev

type totals = {
  received : int;
  wire_bytes : int;
  decode_errors : int;
  failing_received : int;
  success_received : int;
  unrouted : int;
  pending_dropped : int;
}

type pending_success = {
  p_endpoint : int;
  p_report : Report.success_report;
  p_bytes : int;
  p_prov : prov_sample;
  p_arrival : float;
}

(* --- provenance features ------------------------------------------------ *)

let log2_bucket v =
  if v <= 0 then 0 else snd (Float.frexp (float_of_int v))

(* The feature vector of one report: envelope-level knobs (endpoint id,
   ring size, timing mode) are always present; prov-block features only
   exist on v2 packets.  [sync_tail] is categorical (exact digest match
   = "the same recent sync history"); [sync_ops]/[runs] are numeric and
   mined by threshold split. *)
let prov_sample_of (env : Wire.envelope) =
  let tag, period = Pt.Config.timing_code env.Wire.config.Pt.Config.timing in
  let base =
    [
      ("endpoint", string_of_int env.Wire.endpoint);
      ( "ring_kb",
        string_of_int (env.Wire.config.Pt.Config.buffer_size / 1024) );
      ("timing", Printf.sprintf "%d/%d" tag period);
    ]
  in
  match env.Wire.prov with
  | None -> { s_feats = base; s_nums = [] }
  | Some p ->
    {
      s_feats =
        base
        @ [
            ("sync_tail", Printf.sprintf "%08x" (p.Wire.sync_digest land 0xffffffff));
            ("sync_ops_log2", string_of_int (log2_bucket p.Wire.sync_ops));
          ];
      s_nums = [ ("sync_ops", p.Wire.sync_ops); ("runs", p.Wire.runs) ];
    }

type t = {
  policy : policy;
  modules : (string, Corpus.Bug.built) Hashtbl.t;  (* bug id -> server build *)
  mutable bucket_list : bucket list;  (* newest first *)
  by_key : (string, bucket) Hashtbl.t;
  pending : (string, pending_success list) Hashtbl.t;
      (* bug id -> held, newest first *)
  mutable received : int;
  mutable total_wire_bytes : int;
  mutable decode_errors : int;
  mutable failing_received : int;
  mutable success_received : int;
  mutable pending_dropped : int;
}

let create ?(policy = default_policy) ?(modules = Hashtbl.create 8) () =
  if policy.max_pending < 0 then invalid_arg "Collector.create: max_pending < 0";
  {
    policy;
    modules;
    bucket_list = [];
    by_key = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    received = 0;
    total_wire_bytes = 0;
    decode_errors = 0;
    failing_received = 0;
    success_received = 0;
    pending_dropped = 0;
  }

let built_for t bug_id =
  match Hashtbl.find_opt t.modules bug_id with
  | Some b -> Ok b
  | None -> (
    match Corpus.Registry.find bug_id with
    | None -> Error (Printf.sprintf "unknown bug id %s" bug_id)
    | Some bug ->
      let b = bug.Corpus.Bug.build () in
      Lir.Irmod.layout b.Corpus.Bug.m;
      Hashtbl.add t.modules bug_id b;
      Ok b)

let note_endpoint b endpoint =
  if not (List.mem endpoint b.endpoints) then
    b.endpoints <- endpoint :: b.endpoints

let note_arrival b arrival =
  if b.failing_seen + b.success_seen <= arrival_cap then
    b.arrivals_rev <- arrival :: b.arrivals_rev

let keep_success t b endpoint (r : Report.success_report) nbytes prov arrival =
  b.success_seen <- b.success_seen + 1;
  b.wire_bytes <- b.wire_bytes + nbytes;
  note_endpoint b endpoint;
  note_arrival b arrival;
  if b.success_seen <= prov_cap then
    b.success_prov_rev <- prov :: b.success_prov_rev;
  if success_kept b < t.policy.max_success then begin
    b.successful_rev <- r :: b.successful_rev;
    Obs.Scope.count "fleet/success_kept" 1
  end
  else Obs.Scope.count "fleet/success_dropped" 1

(* A success report belongs to the bucket whose watchpoint set its
   trigger pc came from.  When several signatures of one bug share a
   watch pc, first (oldest) bucket wins — matching the driver, which
   arms one watchpoint set per failure location. *)
let route_success t bug_id endpoint (r : Report.success_report) nbytes prov
    arrival =
  let candidates =
    List.filter
      (fun b ->
        String.equal b.signature.Signature.bug_id bug_id
        && List.mem r.Report.trigger_pc b.watch_pcs)
      (List.rev t.bucket_list)
  in
  match candidates with
  | b :: _ ->
    keep_success t b endpoint r nbytes prov arrival;
    true
  | [] -> false

(* Held successes are capped per bug: a fleet that only ever reports
   successes for some bug id (its failure never arrives, or the trigger
   pc matches no bucket) must not grow the pending pool without bound.
   Newest reports win — on overflow the oldest held entry is evicted,
   mirroring a ring buffer at the endpoint. *)
let hold_success t bug_id endpoint r nbytes prov arrival =
  let held = Option.value ~default:[] (Hashtbl.find_opt t.pending bug_id) in
  let held =
    {
      p_endpoint = endpoint;
      p_report = r;
      p_bytes = nbytes;
      p_prov = prov;
      p_arrival = arrival;
    }
    :: held
  in
  let held =
    let n = List.length held in
    if n <= t.policy.max_pending then held
    else begin
      let evicted = n - t.policy.max_pending in
      t.pending_dropped <- t.pending_dropped + evicted;
      Obs.Scope.count "fleet/pending_dropped" evicted;
      Obs.Log.info "fleet/pending_evict"
        ~fields:
          [ ("bug", Obs.Log.Str bug_id); ("evicted", Obs.Log.Int evicted) ];
      List.filteri (fun i _ -> i < t.policy.max_pending) held
    end
  in
  if held = [] then Hashtbl.remove t.pending bug_id
  else Hashtbl.replace t.pending bug_id held

(* A new bucket may claim successes that arrived before its first
   failing report.  Held lists are newest first; route in arrival
   order so kept-first-K sampling sees the fleet's true order. *)
let drain_pending t bug_id =
  match Hashtbl.find_opt t.pending bug_id with
  | None -> ()
  | Some held ->
    let leftover =
      List.filter
        (fun p ->
          not
            (route_success t bug_id p.p_endpoint p.p_report p.p_bytes p.p_prov
               p.p_arrival))
        (List.rev held)
    in
    if leftover = [] then Hashtbl.remove t.pending bug_id
    else Hashtbl.replace t.pending bug_id (List.rev leftover)

let ingest_failing t ~bug_id ~endpoint ~config ~nbytes ~prov ~arrival
    (r : Report.failing_report) =
  match built_for t bug_id with
  | Error _ as e -> e
  | Ok built -> (
    let m = built.Corpus.Bug.m in
    match Signature.of_failing m ~config ~bug_id r with
    | Error _ as e -> e
    | Ok signature ->
      let key = Signature.key signature in
      let b =
        match Hashtbl.find_opt t.by_key key with
        | Some b -> b
        | None ->
          let b =
            {
              signature;
              config;
              watch_pcs = Corpus.Runner.watch_pcs_for m r;
              endpoints = [];
              failing_rev = [];
              successful_rev = [];
              failing_seen = 0;
              success_seen = 0;
              wire_bytes = 0;
              failing_prov_rev = [];
              success_prov_rev = [];
              arrivals_rev = [];
            }
          in
          Hashtbl.add t.by_key key b;
          t.bucket_list <- b :: t.bucket_list;
          Obs.Scope.count "fleet/buckets" 1;
          Obs.Log.info "fleet/bucket_new"
            ~fields:
              [
                ("bug", Obs.Log.Str bug_id);
                ("signature", Obs.Log.Str (Signature.to_string signature));
              ];
          drain_pending t bug_id;
          b
      in
      b.failing_seen <- b.failing_seen + 1;
      b.wire_bytes <- b.wire_bytes + nbytes;
      note_endpoint b endpoint;
      note_arrival b arrival;
      if b.failing_seen <= prov_cap then
        b.failing_prov_rev <- prov :: b.failing_prov_rev;
      if failing_kept b < t.policy.max_failing then begin
        b.failing_rev <- r :: b.failing_rev;
        Obs.Scope.count "fleet/failing_kept" 1
      end
      else Obs.Scope.count "fleet/failing_dropped" 1;
      Ok ())

let ingest t packet =
  Obs.Scope.timed "fleet/ingest_ns" @@ fun () ->
  t.received <- t.received + 1;
  let nbytes = Bytes.length packet in
  t.total_wire_bytes <- t.total_wire_bytes + nbytes;
  Obs.Scope.count "fleet/reports_received" 1;
  Obs.Scope.count "fleet/wire_bytes" nbytes;
  let reject msg =
    t.decode_errors <- t.decode_errors + 1;
    Obs.Scope.count "fleet/decode_errors" 1;
    Obs.Log.warn "fleet/ingest_reject"
      ~fields:
        [ ("reason", Obs.Log.Str msg); ("bytes", Obs.Log.Int nbytes) ];
    Error msg
  in
  let arrival = Obs.Span.wall_clock_ns () in
  match Wire.decode packet with
  | Error msg -> reject msg
  | Ok env -> (
    let prov = prov_sample_of env in
    match env.Wire.payload with
    | Wire.Failing r -> (
      t.failing_received <- t.failing_received + 1;
      match
        ingest_failing t ~bug_id:env.Wire.bug_id ~endpoint:env.Wire.endpoint
          ~config:env.Wire.config ~nbytes ~prov ~arrival r
      with
      | Ok () -> Ok ()
      | Error msg -> reject msg)
    | Wire.Success r -> (
      t.success_received <- t.success_received + 1;
      match built_for t env.Wire.bug_id with
      | Error msg -> reject msg
      | Ok _ ->
        if
          not
            (route_success t env.Wire.bug_id env.Wire.endpoint r nbytes prov
               arrival)
        then
          hold_success t env.Wire.bug_id env.Wire.endpoint r nbytes prov
            arrival;
        Ok ()))

let buckets t = List.rev t.bucket_list

(* --- Lumos-style provenance mining -------------------------------------- *)

type qualifier = { q_desc : string; q_fail_frac : float; q_succ_frac : float }

let qualifier_to_string q =
  Printf.sprintf "%s (%.0f%% of failing vs %.0f%% of successful)" q.q_desc
    (100.0 *. q.q_fail_frac)
    (100.0 *. q.q_succ_frac)

(* A feature discriminates when it covers most failing reports and few
   successful ones.  Both sides need at least [min_side] samples — with a
   single failing report every feature trivially covers 100% of the
   failing class and every qualifier would be noise. *)
let min_side = 2

let strong = 0.75

let weak = 0.25

let qualifiers b =
  let fp = List.rev b.failing_prov_rev in
  let sp = List.rev b.success_prov_rev in
  let nf = List.length fp and ns = List.length sp in
  if nf < min_side || ns < min_side then []
  else begin
    let fnf = float_of_int nf and fns = float_of_int ns in
    let out = ref [] in
    (* Categorical features: exact-value coverage. *)
    let candidates =
      List.sort_uniq compare (List.concat_map (fun p -> p.s_feats) fp)
    in
    List.iter
      (fun (k, v) ->
        let covers p = List.mem (k, v) p.s_feats in
        let ff =
          float_of_int (List.length (List.filter covers fp)) /. fnf
        in
        let sf =
          float_of_int (List.length (List.filter covers sp)) /. fns
        in
        if ff >= strong && sf <= weak then
          out :=
            { q_desc = k ^ "=" ^ v; q_fail_frac = ff; q_succ_frac = sf }
            :: !out)
      candidates;
    (* Numeric features: best threshold split per key.  The failing class
       of a bucket systematically differs from the successful one on
       e.g. sync_ops (a crashed run stopped synchronizing early), which
       exact matching cannot see. *)
    let num_keys =
      List.sort_uniq compare
        (List.concat_map (fun p -> List.map fst p.s_nums) fp)
    in
    List.iter
      (fun k ->
        let vals ps =
          List.filter_map (fun p -> List.assoc_opt k p.s_nums) ps
        in
        let fv = vals fp and sv = vals sp in
        if List.length fv >= min_side && List.length sv >= min_side then begin
          let ffv = float_of_int (List.length fv) in
          let fsv = float_of_int (List.length sv) in
          let thresholds = List.sort_uniq compare (fv @ sv) in
          let best = ref None in
          let consider q =
            let gap = q.q_fail_frac -. q.q_succ_frac in
            if q.q_fail_frac >= strong && q.q_succ_frac <= weak then
              match !best with
              | Some b when b.q_fail_frac -. b.q_succ_frac >= gap -> ()
              | _ -> best := Some q
          in
          List.iter
            (fun t ->
              let below l =
                float_of_int (List.length (List.filter (fun v -> v < t) l))
              in
              let ff = below fv /. ffv and sf = below sv /. fsv in
              consider
                {
                  q_desc = Printf.sprintf "%s<%d" k t;
                  q_fail_frac = ff;
                  q_succ_frac = sf;
                };
              consider
                {
                  q_desc = Printf.sprintf "%s>=%d" k t;
                  q_fail_frac = 1.0 -. ff;
                  q_succ_frac = 1.0 -. sf;
                })
            thresholds;
          match !best with Some q -> out := q :: !out | None -> ()
        end)
      num_keys;
    let ranked =
      List.sort
        (fun a b ->
          compare
            (b.q_fail_frac -. b.q_succ_frac, a.q_desc)
            (a.q_fail_frac -. a.q_succ_frac, b.q_desc))
        !out
    in
    List.filteri (fun i _ -> i < 3) ranked
  end

let pending_pools t =
  Hashtbl.fold
    (fun bug_id held acc -> (bug_id, List.length held) :: acc)
    t.pending []

let totals t =
  let unrouted =
    Hashtbl.fold (fun _ held acc -> acc + List.length held) t.pending 0
  in
  {
    received = t.received;
    wire_bytes = t.total_wire_bytes;
    decode_errors = t.decode_errors;
    failing_received = t.failing_received;
    success_received = t.success_received;
    unrouted;
    pending_dropped = t.pending_dropped;
  }

let built t b =
  match built_for t b.signature.Signature.bug_id with
  | Ok built -> built
  | Error msg ->
    (* A bucket only exists because [built_for] succeeded for it. *)
    invalid_arg ("Collector.built: " ^ msg)

let diagnose t b =
  Obs.Scope.timed "fleet/diagnosis_ns" @@ fun () ->
  let m = (built t b).Corpus.Bug.m in
  Snorlax_core.Diagnosis.diagnose m ~config:b.config ~failing:(failing b)
    ~successful:(successful b)
