module Report = Snorlax_core.Report

type policy = { max_failing : int; max_success : int; max_pending : int }

let default_policy = { max_failing = 4; max_success = 40; max_pending = 64 }

type bucket = {
  signature : Signature.t;
  config : Pt.Config.t;
  watch_pcs : int list;
  mutable endpoints : int list;
  (* Kept reports are consed on (newest first) so ingest stays O(1) per
     packet; [failing]/[successful] reverse them back to arrival order. *)
  mutable failing_rev : Report.failing_report list;
  mutable successful_rev : Report.success_report list;
  mutable failing_seen : int;
  mutable success_seen : int;
  mutable wire_bytes : int;
}

let failing b = List.rev b.failing_rev
let successful b = List.rev b.successful_rev
let failing_kept b = List.length b.failing_rev
let success_kept b = List.length b.successful_rev
let failing_dropped b = b.failing_seen - failing_kept b
let success_dropped b = b.success_seen - success_kept b

type totals = {
  received : int;
  wire_bytes : int;
  decode_errors : int;
  failing_received : int;
  success_received : int;
  unrouted : int;
  pending_dropped : int;
}

type pending_success = {
  p_endpoint : int;
  p_report : Report.success_report;
  p_bytes : int;
}

type t = {
  policy : policy;
  modules : (string, Corpus.Bug.built) Hashtbl.t;  (* bug id -> server build *)
  mutable bucket_list : bucket list;  (* newest first *)
  by_key : (string, bucket) Hashtbl.t;
  pending : (string, pending_success list) Hashtbl.t;
      (* bug id -> held, newest first *)
  mutable received : int;
  mutable total_wire_bytes : int;
  mutable decode_errors : int;
  mutable failing_received : int;
  mutable success_received : int;
  mutable pending_dropped : int;
}

let create ?(policy = default_policy) ?(modules = Hashtbl.create 8) () =
  if policy.max_pending < 0 then invalid_arg "Collector.create: max_pending < 0";
  {
    policy;
    modules;
    bucket_list = [];
    by_key = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    received = 0;
    total_wire_bytes = 0;
    decode_errors = 0;
    failing_received = 0;
    success_received = 0;
    pending_dropped = 0;
  }

let built_for t bug_id =
  match Hashtbl.find_opt t.modules bug_id with
  | Some b -> Ok b
  | None -> (
    match Corpus.Registry.find bug_id with
    | None -> Error (Printf.sprintf "unknown bug id %s" bug_id)
    | Some bug ->
      let b = bug.Corpus.Bug.build () in
      Lir.Irmod.layout b.Corpus.Bug.m;
      Hashtbl.add t.modules bug_id b;
      Ok b)

let note_endpoint b endpoint =
  if not (List.mem endpoint b.endpoints) then
    b.endpoints <- endpoint :: b.endpoints

let keep_success t b endpoint (r : Report.success_report) nbytes =
  b.success_seen <- b.success_seen + 1;
  b.wire_bytes <- b.wire_bytes + nbytes;
  note_endpoint b endpoint;
  if success_kept b < t.policy.max_success then begin
    b.successful_rev <- r :: b.successful_rev;
    Obs.Scope.count "fleet/success_kept" 1
  end
  else Obs.Scope.count "fleet/success_dropped" 1

(* A success report belongs to the bucket whose watchpoint set its
   trigger pc came from.  When several signatures of one bug share a
   watch pc, first (oldest) bucket wins — matching the driver, which
   arms one watchpoint set per failure location. *)
let route_success t bug_id endpoint (r : Report.success_report) nbytes =
  let candidates =
    List.filter
      (fun b ->
        String.equal b.signature.Signature.bug_id bug_id
        && List.mem r.Report.trigger_pc b.watch_pcs)
      (List.rev t.bucket_list)
  in
  match candidates with
  | b :: _ ->
    keep_success t b endpoint r nbytes;
    true
  | [] -> false

(* Held successes are capped per bug: a fleet that only ever reports
   successes for some bug id (its failure never arrives, or the trigger
   pc matches no bucket) must not grow the pending pool without bound.
   Newest reports win — on overflow the oldest held entry is evicted,
   mirroring a ring buffer at the endpoint. *)
let hold_success t bug_id endpoint r nbytes =
  let held = Option.value ~default:[] (Hashtbl.find_opt t.pending bug_id) in
  let held = { p_endpoint = endpoint; p_report = r; p_bytes = nbytes } :: held in
  let held =
    let n = List.length held in
    if n <= t.policy.max_pending then held
    else begin
      let evicted = n - t.policy.max_pending in
      t.pending_dropped <- t.pending_dropped + evicted;
      Obs.Scope.count "fleet/pending_dropped" evicted;
      List.filteri (fun i _ -> i < t.policy.max_pending) held
    end
  in
  if held = [] then Hashtbl.remove t.pending bug_id
  else Hashtbl.replace t.pending bug_id held

(* A new bucket may claim successes that arrived before its first
   failing report.  Held lists are newest first; route in arrival
   order so kept-first-K sampling sees the fleet's true order. *)
let drain_pending t bug_id =
  match Hashtbl.find_opt t.pending bug_id with
  | None -> ()
  | Some held ->
    let leftover =
      List.filter
        (fun p ->
          not (route_success t bug_id p.p_endpoint p.p_report p.p_bytes))
        (List.rev held)
    in
    if leftover = [] then Hashtbl.remove t.pending bug_id
    else Hashtbl.replace t.pending bug_id (List.rev leftover)

let ingest_failing t ~bug_id ~endpoint ~config ~nbytes
    (r : Report.failing_report) =
  match built_for t bug_id with
  | Error _ as e -> e
  | Ok built -> (
    let m = built.Corpus.Bug.m in
    match Signature.of_failing m ~config ~bug_id r with
    | Error _ as e -> e
    | Ok signature ->
      let key = Signature.key signature in
      let b =
        match Hashtbl.find_opt t.by_key key with
        | Some b -> b
        | None ->
          let b =
            {
              signature;
              config;
              watch_pcs = Corpus.Runner.watch_pcs_for m r;
              endpoints = [];
              failing_rev = [];
              successful_rev = [];
              failing_seen = 0;
              success_seen = 0;
              wire_bytes = 0;
            }
          in
          Hashtbl.add t.by_key key b;
          t.bucket_list <- b :: t.bucket_list;
          Obs.Scope.count "fleet/buckets" 1;
          drain_pending t bug_id;
          b
      in
      b.failing_seen <- b.failing_seen + 1;
      b.wire_bytes <- b.wire_bytes + nbytes;
      note_endpoint b endpoint;
      if failing_kept b < t.policy.max_failing then begin
        b.failing_rev <- r :: b.failing_rev;
        Obs.Scope.count "fleet/failing_kept" 1
      end
      else Obs.Scope.count "fleet/failing_dropped" 1;
      Ok ())

let ingest t packet =
  Obs.Scope.timed "fleet/ingest_ns" @@ fun () ->
  t.received <- t.received + 1;
  let nbytes = Bytes.length packet in
  t.total_wire_bytes <- t.total_wire_bytes + nbytes;
  Obs.Scope.count "fleet/reports_received" 1;
  Obs.Scope.count "fleet/wire_bytes" nbytes;
  let reject msg =
    t.decode_errors <- t.decode_errors + 1;
    Obs.Scope.count "fleet/decode_errors" 1;
    Error msg
  in
  match Wire.decode packet with
  | Error msg -> reject msg
  | Ok env -> (
    match env.Wire.payload with
    | Wire.Failing r -> (
      t.failing_received <- t.failing_received + 1;
      match
        ingest_failing t ~bug_id:env.Wire.bug_id ~endpoint:env.Wire.endpoint
          ~config:env.Wire.config ~nbytes r
      with
      | Ok () -> Ok ()
      | Error msg -> reject msg)
    | Wire.Success r -> (
      t.success_received <- t.success_received + 1;
      match built_for t env.Wire.bug_id with
      | Error msg -> reject msg
      | Ok _ ->
        if not (route_success t env.Wire.bug_id env.Wire.endpoint r nbytes)
        then hold_success t env.Wire.bug_id env.Wire.endpoint r nbytes;
        Ok ()))

let buckets t = List.rev t.bucket_list

let pending_pools t =
  Hashtbl.fold
    (fun bug_id held acc -> (bug_id, List.length held) :: acc)
    t.pending []

let totals t =
  let unrouted =
    Hashtbl.fold (fun _ held acc -> acc + List.length held) t.pending 0
  in
  {
    received = t.received;
    wire_bytes = t.total_wire_bytes;
    decode_errors = t.decode_errors;
    failing_received = t.failing_received;
    success_received = t.success_received;
    unrouted;
    pending_dropped = t.pending_dropped;
  }

let built t b =
  match built_for t b.signature.Signature.bug_id with
  | Ok built -> built
  | Error msg ->
    (* A bucket only exists because [built_for] succeeded for it. *)
    invalid_arg ("Collector.built: " ^ msg)

let diagnose t b =
  Obs.Scope.timed "fleet/diagnosis_ns" @@ fun () ->
  let m = (built t b).Corpus.Bug.m in
  Snorlax_core.Diagnosis.diagnose m ~config:b.config ~failing:(failing b)
    ~successful:(successful b)
