(** The in-process diagnosis server's front door (Figure 2, steps 7–8 at
    fleet scale): receives wire packets from every endpoint, buckets
    failing reports by crash {!Signature}, applies a per-bucket sampling
    policy so a bug hit by the whole fleet cannot flood the server, and
    routes watchpoint-triggered success reports to the bucket whose
    failure location they were collected at.

    All counters (received, kept, dropped, decode errors) flow through
    {!Obs.Scope} when a telemetry scope is enabled. *)

type policy = {
  max_failing : int;  (** failing reports kept per bucket (first come) *)
  max_success : int;  (** successful reports kept per bucket *)
  max_pending : int;
      (** success reports held per bug while no bucket claims them; on
          overflow the oldest held entry is evicted (counted in
          {!totals.pending_dropped}) *)
}

val default_policy : policy
(** 4 failing + 40 successful — the paper's 10x successful-trace cap,
    applied per bucket instead of per client — and 64 pending. *)

type prov_sample = {
  s_feats : (string * string) list;
      (** categorical features: endpoint, ring_kb, timing, sync_tail,
          sync_ops_log2 — mined by exact-value coverage *)
  s_nums : (string * int) list;
      (** numeric features: sync_ops, runs — mined by threshold split;
          empty for v1 packets, which carry no provenance *)
}
(** One report's provenance feature vector, kept per *seen* report (up
    to a cap) even when the report's payload is sampled away — feature
    statistics improve with fleet volume, the Lumos observation. *)

type bucket = {
  signature : Signature.t;
  config : Pt.Config.t;
      (** tracer parameters of the bucket's first failing report; the
          bucket's diagnosis decodes every trace under these *)
  watch_pcs : int list;
      (** failing pc + predecessor-block entries — the watchpoint set
          endpoints collect successes at, used to route them here *)
  mutable endpoints : int list;  (** distinct endpoints, newest first *)
  mutable failing_rev : Snorlax_core.Report.failing_report list;
      (** kept reports, newest first (ingest conses); read through
          {!failing} for arrival order *)
  mutable successful_rev : Snorlax_core.Report.success_report list;
  mutable failing_seen : int;  (** including dropped *)
  mutable success_seen : int;
  mutable wire_bytes : int;  (** encoded size of every packet routed here *)
  mutable failing_prov_rev : prov_sample list;  (** newest first, capped *)
  mutable success_prov_rev : prov_sample list;
  mutable arrivals_rev : float list;
      (** wall-clock arrival stamp (ns) of every report routed here,
          newest first, capped — read through {!arrivals}; the
          report->diagnosis latency histogram subtracts these from the
          diagnosis completion time *)
}

val failing : bucket -> Snorlax_core.Report.failing_report list
(** Kept failing reports in arrival order. *)

val successful : bucket -> Snorlax_core.Report.success_report list
(** Kept success reports in arrival order. *)

val failing_kept : bucket -> int
val success_kept : bucket -> int
val failing_dropped : bucket -> int
val success_dropped : bucket -> int

val arrivals : bucket -> float list
(** Arrival stamps in arrival order (capped). *)

(** {2 Provenance mining}

    Which provenance features discriminate the bucket's failing reports
    from its successful ones — the Lumos-style qualifier ("fails only on
    endpoints where X") printed next to the bucket table. *)

type qualifier = {
  q_desc : string;  (** e.g. ["sync_ops<47"] or ["sync_tail=1a2b3c4d"] *)
  q_fail_frac : float;  (** fraction of failing reports the feature covers *)
  q_succ_frac : float;  (** fraction of successful reports it covers *)
}

val qualifiers : bucket -> qualifier list
(** At most 3, strongest discrimination first.  A qualifier needs
    >= 75% failing coverage, <= 25% successful coverage and at least 2
    provenance samples on each side — a single failing report would make
    every feature a trivial (and meaningless) discriminator. *)

val qualifier_to_string : qualifier -> string
(** ["sync_ops<47 (100% of failing vs 9% of successful)"]. *)

type totals = {
  received : int;  (** packets ingested, well-formed or not *)
  wire_bytes : int;
  decode_errors : int;  (** malformed packets (bad bytes, unknown bug id) *)
  failing_received : int;
  success_received : int;
  unrouted : int;
      (** success reports no bucket claimed — their failure was never
          reported, or their trigger pc matches no bucket's watch set *)
  pending_dropped : int;
      (** held successes evicted when a bug's pending pool overflowed
          [policy.max_pending] *)
}

type t

val create :
  ?policy:policy -> ?modules:(string, Corpus.Bug.built) Hashtbl.t -> unit -> t
(** Raises [Invalid_argument] when [policy.max_pending < 0].  [modules]
    shares one server-build cache across collectors — harnesses that
    create many short-lived collectors for the same bugs (e.g. chaos
    trials) would otherwise rebuild every scenario binary per trial. *)

val ingest : t -> bytes -> (unit, string) result
(** Decode one wire packet and route it.  [Error] on malformed input or
    an unknown bug id (both also counted in {!totals}); never raises.
    A success report arriving before any failing report of its bug is
    held back and routed when a matching bucket appears. *)

val buckets : t -> bucket list
(** In creation order. *)

val pending_pools : t -> (string * int) list
(** (bug id, held count) for every non-empty pending pool, in no
    particular order — each count is at most [policy.max_pending]. *)

val totals : t -> totals
(** [unrouted] counts the still-pending successes, so call it after the
    fleet has drained. *)

val built : t -> bucket -> Corpus.Bug.built
(** The server's own build of the bucket's scenario binary (laid out);
    deterministic construction is what lets iids in endpoint reports
    resolve against it. *)

val diagnose : t -> bucket -> Snorlax_core.Diagnosis.result
(** Run the full server pipeline over the bucket's kept reports — the
    cross-endpoint statistical diagnosis. *)
