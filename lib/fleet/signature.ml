module Report = Snorlax_core.Report

type t = {
  bug_id : string;
  kind : string;
  failing_pc : int;
  block_stack : int list;
}

let stack_depth = 8

(* The last [stack_depth] block entries of one thread's decoded steps.
   A step enters a block when its pc is its block's start pc. *)
let block_stack_of_steps m steps =
  let entries =
    List.filter_map
      (fun (s : Pt.Decoder.step) ->
        match Lir.Irmod.block_at_pc m s.Pt.Decoder.pc with
        | f, b ->
          let start =
            Lir.Irmod.block_start_pc m ~fname:f.Lir.Func.fname
              ~label:b.Lir.Block.label
          in
          if start = s.Pt.Decoder.pc then Some s.Pt.Decoder.pc else None
        | exception _ -> None)
      (Array.to_list steps)
  in
  let n = List.length entries in
  if n <= stack_depth then entries
  else List.filteri (fun i _ -> i >= n - stack_depth) entries

(* Both the stream router (tracker-side sharding) and the shard's own
   collector compute the signature of the same packet; memoizing the ring
   decode through the shared cache makes the second computation free. *)
let decode_memo m ~config ring =
  let cache = Pt.Decode_cache.shared in
  if not (Pt.Decode_cache.enabled cache) then Pt.Decoder.decode m ~config ring
  else
    let k = Pt.Decode_cache.key m ~config ring in
    match Pt.Decode_cache.find cache k with
    | Some decoded -> decoded
    | None ->
      let decoded = Pt.Decoder.decode m ~config ring in
      Pt.Decode_cache.add cache k decoded;
      decoded

let of_failing m ~config ~bug_id (r : Report.failing_report) =
  match Lir.Irmod.instr_by_iid m (Report.failing_anchor_iid r) with
  | exception _ ->
    Error
      (Printf.sprintf "report for %s references an unknown instruction"
         bug_id)
  | i ->
    let block_stack =
      match List.assoc_opt r.Report.failing_tid r.Report.traces with
      | None -> []
      | Some ring -> (
        match decode_memo m ~config ring with
        | decoded -> block_stack_of_steps m decoded.Pt.Decoder.steps
        | exception _ -> [])
    in
    Ok
      {
        bug_id;
        kind = Report.kind_label r;
        failing_pc = i.Lir.Instr.pc;
        block_stack;
      }

let key s =
  Printf.sprintf "%s|%s|%d|%s" s.bug_id s.kind s.failing_pc
    (String.concat ">" (List.map string_of_int s.block_stack))

(* Tables only show the newest three stack entries; [key] keeps them all. *)
let to_string s =
  let via =
    match s.block_stack with
    | [] -> ""
    | pcs ->
      let n = List.length pcs in
      let shown = List.filteri (fun i _ -> i >= n - 3) pcs in
      Printf.sprintf " via %s%s"
        (if n > 3 then "..>" else "")
        (String.concat ">" (List.map (Printf.sprintf "0x%x") shown))
  in
  Printf.sprintf "%s@0x%x%s" s.kind s.failing_pc via
