(* Command-line interface: list the corpus, reproduce and diagnose a bug,
   dump a corpus program's IR, and run each of the paper's experiments. *)

open Cmdliner
module Core = Snorlax_core

let list_bugs () =
  let t =
    Snorlax_util.Tablefmt.create
      ~headers:[ "id"; "system"; "tracker"; "kind"; "eval"; "description" ]
  in
  Snorlax_util.Tablefmt.set_align t
    Snorlax_util.Tablefmt.[ Left; Left; Left; Left; Left; Left ];
  let eval_ids =
    List.map (fun b -> b.Corpus.Bug.id) Corpus.Registry.eval_set
  in
  List.iter
    (fun (b : Corpus.Bug.t) ->
      Snorlax_util.Tablefmt.add_row t
        [
          b.Corpus.Bug.id;
          b.Corpus.Bug.system;
          b.Corpus.Bug.tracker_id;
          Corpus.Bug.kind_name b.Corpus.Bug.kind;
          (if List.mem b.Corpus.Bug.id eval_ids then "yes" else "");
          b.Corpus.Bug.description;
        ])
    Corpus.Registry.all;
  Snorlax_util.Tablefmt.print t;
  Printf.printf "\n%d bugs in %d systems (11 in the evaluation set).\n"
    (List.length Corpus.Registry.all)
    (List.length Corpus.Registry.systems)

(* Serialize [json] to [path]; a diagnosis whose telemetry cannot be
   written is a failed diagnosis, hence the non-zero exit. *)
let write_json path json =
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Obs.Json.to_string json);
        Out_channel.output_char oc '\n')
  with
  | () -> true
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" path msg;
    false

(* Observability options shared by every long-running subcommand. *)
type obs_opts = {
  trace_out : string option;
  metrics_out : string option;
  metrics_text : string option;  (** OpenMetrics exposition file *)
  obs_summary : bool;
  log_level : string option;  (** attach a stderr text sink at this level *)
  log_json : string option;  (** JSON-lines event log file *)
}

let obs_wanted o =
  o.trace_out <> None || o.metrics_out <> None || o.metrics_text <> None
  || o.obs_summary

(* Attach log sinks and enable the telemetry scope before the run; false
   on a bad level name or an unwritable --log-json path. *)
let setup_obs o =
  let ok = ref true in
  (match o.log_level with
  | None -> ()
  | Some name -> (
    match Obs.Log.level_of_string name with
    | Some lvl ->
      Obs.Log.set_level lvl;
      Obs.Log.add_sink (Obs.Log.text_sink stderr)
    | None ->
      Printf.eprintf "unknown log level %s (debug|info|warn|error)\n" name;
      ok := false));
  (match o.log_json with
  | None -> ()
  | Some path -> (
    match open_out path with
    | oc ->
      at_exit (fun () -> close_out_noerr oc);
      Obs.Log.add_sink (Obs.Log.json_sink oc)
    | exception Sys_error msg ->
      Printf.eprintf "cannot open %s: %s\n" path msg;
      ok := false));
  if obs_wanted o then ignore (Obs.Scope.enable ());
  !ok

let emit_obs o =
  let ok = ref true in
  (match (o.trace_out, Obs.Scope.export_chrome ()) with
  | Some path, Some j ->
    if write_json path j then
      Printf.printf "Chrome trace written to %s (open in ui.perfetto.dev)\n" path
    else ok := false
  | Some path, None ->
    Printf.eprintf "cannot write %s: no telemetry scope\n" path;
    ok := false
  | None, _ -> ());
  (match (o.metrics_out, Obs.Scope.export_metrics ()) with
  | Some path, Some j ->
    if write_json path j then Printf.printf "Metrics written to %s\n" path
    else ok := false
  | Some path, None ->
    Printf.eprintf "cannot write %s: no telemetry scope\n" path;
    ok := false
  | None, _ -> ());
  (match (o.metrics_text, Obs.Scope.export_openmetrics ()) with
  | Some path, Some text -> (
    match
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc text)
    with
    | () -> Printf.printf "OpenMetrics exposition written to %s\n" path
    | exception Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" path msg;
      ok := false)
  | Some path, None ->
    Printf.eprintf "cannot write %s: no telemetry scope\n" path;
    ok := false
  | None, _ -> ());
  if o.obs_summary then begin
    let s = Obs.Scope.summary () in
    if s <> "" then Printf.printf "\n%s%!" s
  end;
  !ok

(* [--decode-jobs]/[--decode-cache] act on the process-wide defaults so
   every decode downstream of the command — including the fleet
   collector's per-bucket re-diagnoses — sees them without threading
   arguments through each layer. *)
let apply_decode_opts jobs cache =
  Option.iter Snorlax_util.Pool.set_default_jobs jobs;
  Option.iter (Pt.Decode_cache.set_capacity Pt.Decode_cache.shared) cache

let diagnose_bug id verbose decode_jobs decode_cache obs =
  apply_decode_opts decode_jobs decode_cache;
  if not (setup_obs obs) then 1
  else
  match Corpus.Registry.find id with
  | None ->
    Printf.eprintf "unknown bug id %s (try `snorlax list`)\n" id;
    1
  | Some bug -> (
    Printf.printf "Reproducing %s (%s): %s\n%!" bug.Corpus.Bug.id
      (Corpus.Bug.kind_name bug.Corpus.Bug.kind)
      bug.Corpus.Bug.description;
    match Corpus.Runner.collect bug () with
    | Error msg ->
      Printf.eprintf "reproduction failed: %s\n" msg;
      1
    | Ok c ->
      Printf.printf
        "Reproduced after %d executions (seed %s); %d successful traces \
         gathered at the failure location.\n%!"
        c.Corpus.Runner.runs_needed
        (String.concat "," (List.map string_of_int c.Corpus.Runner.failing_seeds))
        (List.length c.Corpus.Runner.successful);
      let m = c.Corpus.Runner.built.Corpus.Bug.m in
      let res =
        Core.Diagnosis.diagnose m ~config:Pt.Config.default
          ~failing:c.Corpus.Runner.failing
          ~successful:c.Corpus.Runner.successful
      in
      (match res.Core.Diagnosis.top with
      | None ->
        Printf.printf "No pattern found.\n";
        ()
      | Some top ->
        Printf.printf "\nDiagnosed root cause (F1 = %.2f):\n%s\n"
          top.Core.Statistics.f1
          (Core.Patterns.describe m top.Core.Statistics.pattern);
        let gt = c.Corpus.Runner.built.Corpus.Bug.ground_truth in
        Printf.printf
          "\nGround truth check: root cause %s, ordering accuracy %.1f%%\n"
          (if
             Core.Accuracy.root_cause_match
               ~diagnosed:top.Core.Statistics.pattern ~ground_truth:gt
           then "matches the developers' fix"
           else "MISMATCH")
          (Core.Accuracy.ordering_accuracy ~diagnosed:top.Core.Statistics.pattern
             ~ground_truth:gt));
      if verbose then begin
        Printf.printf "\nAll scored patterns:\n";
        List.iter
          (fun (s : Core.Statistics.scored) ->
            Printf.printf "  F1=%.2f P=%.2f R=%.2f  %s\n" s.Core.Statistics.f1
              s.Core.Statistics.precision s.Core.Statistics.recall
              (Core.Patterns.id s.Core.Statistics.pattern))
          res.Core.Diagnosis.scored;
        let sc = res.Core.Diagnosis.stage_counts in
        Printf.printf
          "Stage funnel: %d static -> %d executed -> %d aliasing -> %d \
           rank-1 -> %d in patterns -> %d in root cause\n"
          sc.Core.Diagnosis.total_instrs sc.Core.Diagnosis.after_trace_processing
          sc.Core.Diagnosis.after_points_to sc.Core.Diagnosis.after_type_ranking
          sc.Core.Diagnosis.after_patterns sc.Core.Diagnosis.after_statistics
      end;
      if emit_obs obs then 0 else 1)

let watch_tick (p : Fleet.Deploy.progress) =
  Printf.printf "%s\n%!" (Fleet.Deploy.watch_line p)

let fleet_run n_endpoints bug_id all watch decode_jobs decode_cache obs =
  apply_decode_opts decode_jobs decode_cache;
  if not (setup_obs obs) then 1
  else begin
  (* --watch reads stage percentiles out of the ambient registry, so it
     needs the scope even when no export flag asked for one. *)
  if watch && not (Obs.Scope.enabled ()) then ignore (Obs.Scope.enable ());
  let bugs =
    match (bug_id, all) with
    | _, true -> Ok Corpus.Registry.eval_set
    | Some id, false -> (
      match Corpus.Registry.find id with
      | Some bug -> Ok [ bug ]
      | None -> Error (Printf.sprintf "unknown bug id %s (try `snorlax list`)" id))
    | None, false -> Error "pass --bug ID or --all"
  in
  match bugs with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok bugs ->
    Printf.printf
      "Deploying %d endpoints x %d scenario%s; collecting wire reports...\n%!"
      n_endpoints (List.length bugs)
      (if List.length bugs = 1 then "" else "s");
    let tick = if watch then Some watch_tick else None in
    let s = Fleet.Deploy.run ?tick ~endpoints:n_endpoints bugs in
    let t =
      Snorlax_util.Tablefmt.create
        ~headers:
          [
            "bug"; "signature"; "eps"; "fail k/d"; "succ k/d"; "bytes";
            "top pattern"; "F1"; "ground truth";
          ]
    in
    List.iter
      (fun (r : Fleet.Deploy.bucket_row) ->
        Snorlax_util.Tablefmt.add_row t
          [
            r.Fleet.Deploy.bug_id;
            r.Fleet.Deploy.signature;
            string_of_int r.Fleet.Deploy.endpoints_hit;
            Printf.sprintf "%d/%d" r.Fleet.Deploy.failing_kept
              r.Fleet.Deploy.failing_dropped;
            Printf.sprintf "%d/%d" r.Fleet.Deploy.success_kept
              r.Fleet.Deploy.success_dropped;
            string_of_int r.Fleet.Deploy.wire_bytes;
            Option.value ~default:"-" r.Fleet.Deploy.top_pattern;
            Printf.sprintf "%.2f" r.Fleet.Deploy.f1;
            (if r.Fleet.Deploy.top_pattern = None then "-"
             else if r.Fleet.Deploy.root_cause_match then
               Printf.sprintf "match (A_O %.0f%%)" r.Fleet.Deploy.ordering_accuracy
             else "MISMATCH");
          ])
      s.Fleet.Deploy.rows;
    Snorlax_util.Tablefmt.print t;
    List.iter
      (fun (r : Fleet.Deploy.bucket_row) ->
        (match r.Fleet.Deploy.top_describe with
        | Some d ->
          Printf.printf "\n%s (%s):\n%s\n" r.Fleet.Deploy.bug_id
            r.Fleet.Deploy.signature d
        | None ->
          Printf.printf "\n%s (%s): no pattern diagnosed\n"
            r.Fleet.Deploy.bug_id r.Fleet.Deploy.signature);
        List.iter
          (fun q -> Printf.printf "  qualifier: %s\n" q)
          r.Fleet.Deploy.qualifiers)
      s.Fleet.Deploy.rows;
    Printf.printf
      "\n%d packets (%d wire bytes) from %d endpoint(s); %d bucket(s), dedup \
       %.1f:1, %d decode error(s), %d unrouted; diagnosis %.1f ms of %.1f ms \
       total.\n"
      s.Fleet.Deploy.shipped s.Fleet.Deploy.wire_bytes s.Fleet.Deploy.endpoints
      s.Fleet.Deploy.bucket_count s.Fleet.Deploy.dedup_ratio
      s.Fleet.Deploy.decode_errors s.Fleet.Deploy.unrouted
      (s.Fleet.Deploy.diagnosis_ns /. 1e6)
      (s.Fleet.Deploy.total_ns /. 1e6);
    Printf.printf "Report->diagnosis latency p50 %.1f ms, p99 %.1f ms.\n"
      (s.Fleet.Deploy.latency_p50_ns /. 1e6)
      (s.Fleet.Deploy.latency_p99_ns /. 1e6);
    let obs_ok = emit_obs obs in
    let diagnosed =
      s.Fleet.Deploy.rows <> []
      && List.for_all
           (fun (r : Fleet.Deploy.bucket_row) ->
             r.Fleet.Deploy.top_pattern <> None)
           s.Fleet.Deploy.rows
    in
    if not diagnosed then Printf.eprintf "fleet: some bucket had no diagnosis\n";
    if diagnosed && obs_ok then 0 else 1
  end

let chaos_run seeds n_endpoints bug_id all fault_name out obs =
  if not (setup_obs obs) then 1
  else
  let bugs =
    match (bug_id, all) with
    | _, true -> Ok Corpus.Registry.eval_set
    | Some id, false -> (
      match Corpus.Registry.find id with
      | Some bug -> Ok [ bug ]
      | None -> Error (Printf.sprintf "unknown bug id %s (try `snorlax list`)" id))
    | None, false -> Error "pass --bug ID or --all"
  in
  let classes =
    match fault_name with
    | None -> Ok Chaos.Fault.all
    | Some n -> (
      match Chaos.Fault.of_name n with
      | Some c -> Ok [ c ]
      | None ->
        Error
          (Printf.sprintf "unknown fault class %s (one of: %s)" n
             (String.concat ", " (List.map Chaos.Fault.name Chaos.Fault.all))))
  in
  match (bugs, classes) with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok bugs, Ok classes -> (
    Printf.printf
      "Chaos: %d seed(s) x %d fault class(es) x %d bug(s), %d endpoints \
       each...\n%!"
      seeds (List.length classes) (List.length bugs) n_endpoints;
    match
      (* One bug per pool lane; --decode-jobs (which sets the pool
         default) therefore scales the chaos sweep too. *)
      Chaos.Harness.run ~endpoints:n_endpoints ~classes
        ~progress:(fun line -> Printf.printf "  %s\n%!" line)
        ~jobs:(Snorlax_util.Pool.default_jobs ())
        ~seeds bugs
    with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      1
    | Ok r ->
      let t =
        Snorlax_util.Tablefmt.create
          ~headers:
            [
              "fault class"; "trials"; "faults"; "packets"; "violations";
              "uncaught"; "nondet"; "diagnosed"; "rc match"; "surv F1";
            ]
      in
      Snorlax_util.Tablefmt.set_align t
        Snorlax_util.Tablefmt.
          [ Left; Right; Right; Right; Right; Right; Right; Right; Right;
            Right ];
      List.iter
        (fun (s : Chaos.Harness.class_summary) ->
          Snorlax_util.Tablefmt.add_row t
            [
              Chaos.Fault.name s.Chaos.Harness.summary_cls;
              string_of_int s.Chaos.Harness.trials;
              string_of_int s.Chaos.Harness.faults_injected;
              string_of_int s.Chaos.Harness.packets_sent;
              string_of_int s.Chaos.Harness.violation_count;
              string_of_int s.Chaos.Harness.uncaught_count;
              string_of_int s.Chaos.Harness.nondeterministic;
              string_of_int s.Chaos.Harness.diagnosed_trials;
              string_of_int s.Chaos.Harness.rc_matched_trials;
              Printf.sprintf "%.2f" s.Chaos.Harness.survival_f1;
            ])
        r.Chaos.Harness.classes;
      Snorlax_util.Tablefmt.print t;
      Printf.printf
        "\n%d faults injected; %d invariant violation(s), %d uncaught \
         exception(s)/nondeterminism.\n"
        r.Chaos.Harness.total_faults r.Chaos.Harness.total_violations
        r.Chaos.Harness.total_uncaught;
      List.iter
        (fun v -> Printf.eprintf "violation: %s\n" v)
        r.Chaos.Harness.violation_examples;
      let json_ok = write_json out (Chaos.Harness.to_json r) in
      if json_ok then Printf.printf "Chaos bench written to %s\n" out;
      let obs_ok = emit_obs obs in
      if Chaos.Harness.ok r && json_ok && obs_ok then 0 else 1)

let stream_json (s : Stream.Deploy.summary) =
  Obs.Json.Obj
    [
      ("endpoints", Obs.Json.Int s.Stream.Deploy.cfg.Stream.Deploy.endpoints);
      ("duration_ticks", Obs.Json.Int s.Stream.Deploy.ticks);
      ("shards", Obs.Json.Int s.Stream.Deploy.cfg.Stream.Deploy.shards);
      ( "shard_domains",
        Obs.Json.Int s.Stream.Deploy.cfg.Stream.Deploy.shard_domains );
      ("domains_used", Obs.Json.Int s.Stream.Deploy.domains_used);
      ("churn", Obs.Json.Bool s.Stream.Deploy.cfg.Stream.Deploy.churn);
      ( "fault",
        Obs.Json.String
          (match s.Stream.Deploy.cfg.Stream.Deploy.fault with
          | Some c -> Chaos.Fault.name c
          | None -> "none") );
      ( "shed_policy",
        Obs.Json.String (Stream.Shard.shed_name s.Stream.Deploy.cfg.Stream.Deploy.shed) );
      ("offered", Obs.Json.Int s.Stream.Deploy.offered);
      ("shed", Obs.Json.Int s.Stream.Deploy.shed);
      ("drained", Obs.Json.Int s.Stream.Deploy.drained);
      ("ingested_ok", Obs.Json.Int s.Stream.Deploy.ingested_ok);
      ("ingest_errors", Obs.Json.Int s.Stream.Deploy.ingest_errors);
      ("tracker_malformed", Obs.Json.Int s.Stream.Deploy.tracker_malformed);
      ("tracker_held", Obs.Json.Int s.Stream.Deploy.tracker_held);
      ("tracker_dropped", Obs.Json.Int s.Stream.Deploy.tracker_dropped);
      ("buckets", Obs.Json.Int s.Stream.Deploy.bucket_count);
      ("incidents", Obs.Json.Int s.Stream.Deploy.incidents);
      ("joins", Obs.Json.Int s.Stream.Deploy.joins);
      ("leaves", Obs.Json.Int s.Stream.Deploy.leaves);
      ("crashes", Obs.Json.Int s.Stream.Deploy.crashes);
      ("final_endpoints", Obs.Json.Int s.Stream.Deploy.final_endpoints);
      ("inject_faults", Obs.Json.Int s.Stream.Deploy.inject_faults);
      ("peak_queue_depth", Obs.Json.Int s.Stream.Deploy.peak_queue_depth);
      ("watermark_highs", Obs.Json.Int s.Stream.Deploy.watermark_highs);
      ("rederives", Obs.Json.Int s.Stream.Deploy.rederives);
      ("fast_updates", Obs.Json.Int s.Stream.Deploy.fast_updates);
      ("reports_per_sec", Obs.Json.Float s.Stream.Deploy.reports_per_sec);
      ("shed_ratio", Obs.Json.Float s.Stream.Deploy.shed_ratio);
      ( "report_to_diagnosis_p50_ns",
        Obs.Json.Float s.Stream.Deploy.latency_p50_ns );
      ( "report_to_diagnosis_p99_ns",
        Obs.Json.Float s.Stream.Deploy.latency_p99_ns );
      ( "shard_latency",
        Obs.Json.List
          (Array.to_list
             (Array.mapi
                (fun i (p50, p99) ->
                  Obs.Json.Obj
                    [
                      ("shard", Obs.Json.Int i);
                      ("queue_wait_p50_ns", Obs.Json.Float p50);
                      ("queue_wait_p99_ns", Obs.Json.Float p99);
                    ])
                s.Stream.Deploy.shard_latency)) );
      ("incremental_agrees_batch", Obs.Json.Bool s.Stream.Deploy.agree);
      ("accounted", Obs.Json.Bool s.Stream.Deploy.accounted);
      ("stream_ns", Obs.Json.Float s.Stream.Deploy.stream_ns);
      ("total_ns", Obs.Json.Float s.Stream.Deploy.total_ns);
    ]

let stream_run n_endpoints ticks n_shards shard_domains churn fault_name
    shed_str watch bug_id all seed out decode_jobs decode_cache obs =
  apply_decode_opts decode_jobs decode_cache;
  if not (setup_obs obs) then 1
  else begin
    if watch && not (Obs.Scope.enabled ()) then ignore (Obs.Scope.enable ());
    let bugs =
      match (bug_id, all) with
      | _, true -> Ok Corpus.Registry.eval_set
      | Some id, false -> (
        match Corpus.Registry.find id with
        | Some bug -> Ok [ bug ]
        | None ->
          Error (Printf.sprintf "unknown bug id %s (try `snorlax list`)" id))
      | None, false -> Error "pass --bug ID or --all"
    in
    let fault =
      match fault_name with
      | None -> Ok None
      | Some n -> (
        match Chaos.Fault.of_name n with
        | Some c -> Ok (Some c)
        | None ->
          Error
            (Printf.sprintf "unknown fault class %s (one of: %s)" n
               (String.concat ", " (List.map Chaos.Fault.name Chaos.Fault.all))))
    in
    let shed =
      match Stream.Shard.shed_of_name shed_str with
      | Some s -> Ok s
      | None ->
        Error
          (Printf.sprintf "unknown shed policy %s (drop-oldest|drop-newest)"
             shed_str)
    in
    match (bugs, fault, shed) with
    | Error msg, _, _ | _, Error msg, _ | _, _, Error msg ->
      Printf.eprintf "%s\n" msg;
      1
    | Ok bugs, Ok fault, Ok shed ->
      let cfg =
        {
          Stream.Deploy.default_config with
          Stream.Deploy.endpoints = n_endpoints;
          duration_ticks = ticks;
          shards = n_shards;
          shard_domains;
          churn;
          fault;
          seed;
          shed;
        }
      in
      Printf.printf
        "Streaming %d endpoints x %d scenario%s for %d ticks across %d \
         shard%s (%s)...\n%!"
        n_endpoints (List.length bugs)
        (if List.length bugs = 1 then "" else "s")
        ticks n_shards
        (if n_shards = 1 then "" else "s")
        (if shard_domains <= 1 then "inline"
         else Printf.sprintf "%d worker domains" shard_domains);
      let tick =
        if watch then
          Some
            (fun p -> Printf.printf "%s\n%!" (Stream.Deploy.watch_line p))
        else None
      in
      let s = Stream.Deploy.run ?tick cfg bugs in
      let t =
        Snorlax_util.Tablefmt.create
          ~headers:
            [
              "shard"; "bug"; "signature"; "fail"; "succ"; "top pattern";
              "F1"; "gt"; "rederive"; "fast"; "batch=";
            ]
      in
      List.iter
        (fun (r : Stream.Deploy.bucket_row) ->
          Snorlax_util.Tablefmt.add_row t
            [
              string_of_int r.Stream.Deploy.shard;
              r.Stream.Deploy.bug_id;
              r.Stream.Deploy.signature;
              string_of_int r.Stream.Deploy.failing_kept;
              string_of_int r.Stream.Deploy.success_kept;
              Option.value ~default:"-" r.Stream.Deploy.top_pattern;
              Printf.sprintf "%.2f" r.Stream.Deploy.f1;
              (if r.Stream.Deploy.root_cause_match then "match" else "MISS");
              string_of_int r.Stream.Deploy.rederives;
              string_of_int r.Stream.Deploy.fast_updates;
              (if r.Stream.Deploy.batch_agrees then "yes" else "NO");
            ])
        s.Stream.Deploy.rows;
      Snorlax_util.Tablefmt.print t;
      Printf.printf
        "\n%d packets offered, %d shed (%.1f%%), %d drained; peak queue %d, \
         %d high-watermark crossing(s).\n"
        s.Stream.Deploy.offered s.Stream.Deploy.shed
        (100.0 *. s.Stream.Deploy.shed_ratio)
        s.Stream.Deploy.drained s.Stream.Deploy.peak_queue_depth
        s.Stream.Deploy.watermark_highs;
      Printf.printf
        "%d incidents from %d->%d endpoints (+%d joins, -%d leaves, -%d \
         crashes); %d buckets, %d re-derives / %d fast updates.\n"
        s.Stream.Deploy.incidents n_endpoints s.Stream.Deploy.final_endpoints
        s.Stream.Deploy.joins s.Stream.Deploy.leaves s.Stream.Deploy.crashes
        s.Stream.Deploy.bucket_count s.Stream.Deploy.rederives
        s.Stream.Deploy.fast_updates;
      Printf.printf
        "Sustained %.0f reports/s; report->diagnosis latency p50 %.1f ms, \
         p99 %.1f ms.\n"
        s.Stream.Deploy.reports_per_sec
        (s.Stream.Deploy.latency_p50_ns /. 1e6)
        (s.Stream.Deploy.latency_p99_ns /. 1e6);
      let json_ok = write_json out (stream_json s) in
      if json_ok then Printf.printf "Stream bench written to %s\n" out;
      let obs_ok = emit_obs obs in
      (* The gate: incremental == batch on every bucket, backpressure
         accounting reconciles, nothing left in the queues, and — absent
         injected faults — the fleet's failures were actually diagnosed. *)
      let gate =
        s.Stream.Deploy.agree && s.Stream.Deploy.accounted
        && s.Stream.Deploy.leftover_queue = 0
        && (fault <> None || s.Stream.Deploy.bucket_count > 0)
      in
      if not gate then Printf.eprintf "stream: gate failed\n";
      if gate && json_ok && obs_ok then 0 else 1
  end

let validate () =
  let ok = ref 0 and bad = ref 0 in
  List.iter
    (fun bug ->
      match Corpus.Runner.collect bug () with
      | Error msg ->
        incr bad;
        Printf.printf "%-16s FAILED-TO-REPRODUCE %s\n%!" bug.Corpus.Bug.id msg
      | Ok c -> (
        let res =
          Core.Diagnosis.diagnose c.Corpus.Runner.built.Corpus.Bug.m
            ~config:Pt.Config.default ~failing:c.Corpus.Runner.failing
            ~successful:c.Corpus.Runner.successful
        in
        let gt = c.Corpus.Runner.built.Corpus.Bug.ground_truth in
        match res.Core.Diagnosis.top with
        | Some top
          when Core.Accuracy.root_cause_match
                 ~diagnosed:top.Core.Statistics.pattern ~ground_truth:gt
               && Core.Accuracy.ordering_accuracy
                    ~diagnosed:top.Core.Statistics.pattern ~ground_truth:gt
                  = 100.0 ->
          incr ok;
          Printf.printf "%-16s ok (F1 %.2f, A_O 100%%)\n%!" bug.Corpus.Bug.id
            top.Core.Statistics.f1
        | Some top ->
          incr bad;
          Printf.printf "%-16s WRONG ROOT CAUSE: %s\n%!" bug.Corpus.Bug.id
            (Core.Patterns.id top.Core.Statistics.pattern)
        | None ->
          incr bad;
          Printf.printf "%-16s NO PATTERN\n%!" bug.Corpus.Bug.id))
    Corpus.Registry.all;
  Printf.printf "\n%d/%d bugs diagnosed with full accuracy.\n" !ok (!ok + !bad);
  if !bad = 0 then 0 else 1

let replay_bug id =
  match Corpus.Registry.find id with
  | None ->
    Printf.eprintf "unknown bug id %s\n" id;
    1
  | Some bug -> (
    match Corpus.Runner.collect bug ~success_per_failing:10 () with
    | Error msg ->
      Printf.eprintf "reproduction failed: %s\n" msg;
      1
    | Ok c ->
      let m = c.Corpus.Runner.built.Corpus.Bug.m in
      let res =
        Core.Diagnosis.diagnose m ~config:Pt.Config.default
          ~failing:c.Corpus.Runner.failing
          ~successful:c.Corpus.Runner.successful
      in
      (match res.Core.Diagnosis.top with
      | None ->
        Printf.eprintf "no pattern to replay\n";
        ()
      | Some top ->
        let racy = Replay.racy_iids_of_pattern top.Core.Statistics.pattern in
        let seed = List.hd c.Corpus.Runner.failing_seeds in
        let r0, schedule =
          Replay.record ~seed m ~entry:bug.Corpus.Bug.entry ~racy_iids:racy
        in
        Printf.printf
          "Recorded the failing run (seed %d): %d racing-access events.\n" seed
          (Replay.schedule_length schedule);
        (match r0.Sim.Interp.outcome with
        | Sim.Interp.Failed { failure; _ } ->
          Printf.printf "  original failure: %s\n" (Sim.Failure.to_string failure)
        | _ -> ());
        let r1, fidelity =
          Replay.replay ~seed m ~entry:bug.Corpus.Bug.entry ~racy_iids:racy
            schedule
        in
        Printf.printf
          "Replay under the coarse schedule: %s (%d enforced, %d diverged%s).\n"
          (match r1.Sim.Interp.outcome with
          | Sim.Interp.Failed { failure; _ } -> Sim.Failure.to_string failure
          | Sim.Interp.Completed -> "completed"
          | Sim.Interp.Stuck -> "stuck"
          | Sim.Interp.Fuel_exhausted -> "fuel exhausted")
          fidelity.Replay.enforced fidelity.Replay.diverged
          (if fidelity.Replay.gave_up then ", gave up" else ""));
      0)

let dump_bug id =
  match Corpus.Registry.find id with
  | None ->
    Printf.eprintf "unknown bug id %s\n" id;
    1
  | Some bug ->
    let built = bug.Corpus.Bug.build () in
    print_string (Lir.Printer.module_to_string built.Corpus.Bug.m);
    0

let experiment name samples =
  match name with
  | "hypothesis" | "tables" ->
    let t1 = Experiments.Report.print_table1 ?samples () in
    let t2 = Experiments.Report.print_table2 ?samples () in
    let t3 = Experiments.Report.print_table3 ?samples () in
    Experiments.Report.print_hypothesis_summary [ t1; t2; t3 ];
    0
  | "accuracy" ->
    ignore (Experiments.Report.print_accuracy ());
    0
  | "stages" | "figure7" ->
    ignore (Experiments.Report.print_figure7 ());
    0
  | "analysis-time" | "table4" ->
    ignore (Experiments.Report.print_table4 ());
    0
  | "overhead" | "figure8" ->
    ignore (Experiments.Report.print_figure8 ());
    0
  | "scalability" | "figure9" ->
    ignore (Experiments.Report.print_figure9 ());
    0
  | "latency" ->
    ignore (Experiments.Report.print_latency ());
    0
  | "ablations" ->
    Experiments.Ablations.print_all ();
    0
  | "all" ->
    let t1 = Experiments.Report.print_table1 ?samples () in
    let t2 = Experiments.Report.print_table2 ?samples () in
    let t3 = Experiments.Report.print_table3 ?samples () in
    Experiments.Report.print_hypothesis_summary [ t1; t2; t3 ];
    ignore (Experiments.Report.print_accuracy ());
    ignore (Experiments.Report.print_figure7 ());
    ignore (Experiments.Report.print_table4 ());
    ignore (Experiments.Report.print_figure8 ());
    ignore (Experiments.Report.print_figure9 ());
    ignore (Experiments.Report.print_latency ());
    Experiments.Ablations.print_all ();
    0
  | other ->
    Printf.eprintf
      "unknown experiment %s (hypothesis|accuracy|stages|analysis-time|\
       overhead|scalability|latency|ablations|all)\n"
      other;
    1

let bench_compare old_path new_path max_regress verbose =
  let read path =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> (
      match Obs.Json.parse s with
      | Ok j -> Ok j
      | Error msg -> Error (Printf.sprintf "%s: parse error: %s" path msg))
    | exception Sys_error msg -> Error msg
  in
  match (read old_path, read new_path) with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "bench-compare: %s\n" msg;
    2
  | Ok old_, Ok new_ ->
    let r = Obs.Bench_diff.compare ~old_ ~new_ ~max_regress in
    let num = function
      | Some v -> Printf.sprintf "%.6g" v
      | None -> "-"
    in
    let t =
      Snorlax_util.Tablefmt.create
        ~headers:[ "metric"; "old"; "new"; "delta"; "" ]
    in
    Snorlax_util.Tablefmt.set_align t
      Snorlax_util.Tablefmt.[ Left; Right; Right; Right; Left ];
    let shown = ref 0 in
    List.iter
      (fun (row : Obs.Bench_diff.row) ->
        if verbose || row.Obs.Bench_diff.regressed then begin
          incr shown;
          Snorlax_util.Tablefmt.add_row t
            [
              row.Obs.Bench_diff.key;
              num row.Obs.Bench_diff.old_v;
              num row.Obs.Bench_diff.new_v;
              (match row.Obs.Bench_diff.delta_pct with
              | Some d -> Printf.sprintf "%+.1f%%" d
              | None -> "-");
              (if row.Obs.Bench_diff.regressed then "REGRESSED"
               else if not row.Obs.Bench_diff.gated then "info"
               else "ok");
            ]
        end)
      r.Obs.Bench_diff.rows;
    if !shown > 0 then Snorlax_util.Tablefmt.print t;
    let gated =
      List.length
        (List.filter
           (fun (row : Obs.Bench_diff.row) -> row.Obs.Bench_diff.gated)
           r.Obs.Bench_diff.rows)
    in
    if r.Obs.Bench_diff.regressions = 0 then begin
      Printf.printf
        "bench-compare: %d metric(s), %d gated, none regressed beyond %.0f%%.\n"
        (List.length r.Obs.Bench_diff.rows)
        gated max_regress;
      0
    end
    else begin
      Printf.eprintf
        "bench-compare: %d of %d gated metric(s) regressed beyond %.0f%%.\n"
        r.Obs.Bench_diff.regressions gated max_regress;
      1
    end

let oracle_run bug_id all out decode_jobs decode_cache obs =
  apply_decode_opts decode_jobs decode_cache;
  if not (setup_obs obs) then 1
  else
  let bugs =
    match (bug_id, all) with
    | _, true -> Ok Corpus.Registry.all
    | Some id, false -> (
      match Corpus.Registry.find id with
      | Some bug -> Ok [ bug ]
      | None -> Error (Printf.sprintf "unknown bug id %s (try `snorlax list`)" id))
    | None, false -> Error "pass --bug ID or --all"
  in
  match bugs with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok bugs ->
    Printf.printf
      "Cross-checking %d bug(s): diagnosis pipeline vs happens-before \
       oracle...\n%!"
      (List.length bugs);
    (* The sweep fans one bug per lane; --decode-jobs (which sets the
       pool default) therefore scales the registry sweep too. *)
    let results =
      Oracle.Diffcheck.check_all
        ~sweep_jobs:(Snorlax_util.Pool.default_jobs ())
        bugs
    in
    let t =
      Snorlax_util.Tablefmt.create
        ~headers:
          [
            "bug"; "kind"; "verdict"; "races"; "events"; "pairs ok";
            "top pattern";
          ]
    in
    let errors = ref 0 and diverging = ref [] in
    List.iter
      (fun (id, r) ->
        match r with
        | Error msg ->
          incr errors;
          Snorlax_util.Tablefmt.add_row t
            [ id; "-"; "ERROR: " ^ msg; "-"; "-"; "-"; "-" ]
        | Ok (r : Oracle.Diffcheck.bug_result) ->
          if Oracle.Diffcheck.diverged r then diverging := (id, r) :: !diverging;
          Snorlax_util.Tablefmt.add_row t
            [
              id;
              r.Oracle.Diffcheck.bug_kind;
              Oracle.Diffcheck.classification_name
                r.Oracle.Diffcheck.classification;
              string_of_int r.Oracle.Diffcheck.oracle_races;
              string_of_int r.Oracle.Diffcheck.oracle_events;
              Printf.sprintf "%d/%d"
                (List.length r.Oracle.Diffcheck.checked
                - List.length r.Oracle.Diffcheck.spurious)
                (List.length r.Oracle.Diffcheck.checked);
              Option.value ~default:"-" r.Oracle.Diffcheck.top_pattern;
            ])
      results;
    Snorlax_util.Tablefmt.print t;
    List.iter
      (fun (id, (r : Oracle.Diffcheck.bug_result)) ->
        Printf.printf "\n%s DIVERGES (%s):\n" id
          (Oracle.Diffcheck.classification_name r.Oracle.Diffcheck.classification);
        List.iter
          (fun (c : Oracle.Diffcheck.pair_check) ->
            match c.Oracle.Diffcheck.verdict with
            | Analysis.Hb.No_conflict ->
              Printf.printf "  pair (%d, %d): no conflict observed\n"
                c.Oracle.Diffcheck.a_iid c.Oracle.Diffcheck.b_iid
            | Analysis.Hb.Conflict { ordering; path } ->
              Printf.printf "  pair (%d, %d): %s\n" c.Oracle.Diffcheck.a_iid
                c.Oracle.Diffcheck.b_iid
                (match ordering with
                | Analysis.Hb.Racy -> "racy"
                | Analysis.Hb.Lock_ordered -> "lock-ordered"
                | Analysis.Hb.Enforced ->
                  "ENFORCED: " ^ String.concat " -> " path))
          r.Oracle.Diffcheck.checked;
        List.iter
          (fun (m : Analysis.Hb.race) ->
            Printf.printf "  uncovered anchor race (%d, %d)\n"
              m.Analysis.Hb.a_iid m.Analysis.Hb.b_iid)
          r.Oracle.Diffcheck.missed;
        List.iter (fun n -> Printf.printf "  note: %s\n" n)
          r.Oracle.Diffcheck.notes)
      (List.rev !diverging);
    let agree = List.length results - List.length !diverging - !errors in
    Printf.printf "\n%d/%d agree, %d diverge, %d reproduction error(s).\n"
      agree (List.length results)
      (List.length !diverging)
      !errors;
    let json_ok = write_json out (Oracle.Diffcheck.to_json results) in
    if json_ok then Printf.printf "Oracle bench written to %s\n" out;
    let obs_ok = emit_obs obs in
    if !diverging = [] && !errors = 0 && json_ok && obs_ok then 0 else 1

let fix_run bug_id all seeds jobs min_fix_rate out decode_jobs decode_cache obs
    =
  apply_decode_opts decode_jobs decode_cache;
  if not (setup_obs obs) then 1
  else
  let bugs =
    match (bug_id, all) with
    | _, true -> Ok Corpus.Registry.all
    | Some id, false -> (
      match Corpus.Registry.find id with
      | Some bug -> Ok [ bug ]
      | None -> Error (Printf.sprintf "unknown bug id %s (try `snorlax list`)" id))
    | None, false -> Error "pass --bug ID or --all"
  in
  match bugs with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok bugs ->
    Printf.printf
      "Synthesizing and validating patches for %d bug(s) (%d-seed oracle \
       sweep each)...\n%!"
      (List.length bugs) seeds;
    (* One bug per lane, like the oracle sweep; --jobs caps the fan-out
       (default: the pool's recommended width). *)
    let sweep_jobs =
      match jobs with
      | Some n -> n
      | None -> Snorlax_util.Pool.default_jobs ()
    in
    let results = Fix.Validate.fix_all ~sweep_jobs ~seeds bugs in
    let t =
      Snorlax_util.Tablefmt.create
        ~headers:
          [ "bug"; "kind"; "template"; "verdict"; "replay"; "sweep"; "notes" ]
    in
    List.iter
      (fun (id, r) ->
        match r with
        | Error msg ->
          Snorlax_util.Tablefmt.add_row t
            [ id; "-"; "-"; "ERROR: " ^ msg; "-"; "-"; "-" ]
        | Ok (b : Fix.Validate.bug_report) ->
          Snorlax_util.Tablefmt.add_row t
            [
              id;
              b.Fix.Validate.bug_kind;
              (match b.Fix.Validate.template with
              | Some tpl -> Fix.Patch.template_name tpl
              | None -> "-");
              Fix.Validate.verdict_name b.Fix.Validate.verdict;
              (if b.Fix.Validate.replay_ok then "ok" else "fail");
              Printf.sprintf "%d seeds" b.Fix.Validate.sweep_seeds;
              (let reason = Fix.Validate.verdict_reason b.Fix.Validate.verdict in
               if reason = "" then
                 Option.value ~default:"" b.Fix.Validate.patch
               else reason);
            ])
      results;
    Snorlax_util.Tablefmt.print t;
    let s = Fix.Validate.summarize results in
    Printf.printf
      "\n%d/%d fixed (%.0f%%), %d not fixed, %d regressed, %d error(s); %d \
       validation runs, %.1f runs/s.\n"
      s.Fix.Validate.fixed s.Fix.Validate.bugs
      (100. *. s.Fix.Validate.fix_rate)
      s.Fix.Validate.not_fixed s.Fix.Validate.regressed s.Fix.Validate.errors
      s.Fix.Validate.total_runs s.Fix.Validate.seeds_per_sec;
    List.iter
      (fun (k, f, total) -> Printf.printf "  %-20s %d/%d fixed\n" k f total)
      s.Fix.Validate.by_kind;
    let json_ok = write_json out (Fix.Validate.to_json results) in
    if json_ok then Printf.printf "Fix report written to %s\n" out;
    let obs_ok = emit_obs obs in
    let rate_ok = s.Fix.Validate.fix_rate >= min_fix_rate in
    if not rate_ok then
      Printf.eprintf "fix rate %.2f below the --min-fix-rate floor %.2f\n"
        s.Fix.Validate.fix_rate min_fix_rate;
    if rate_ok && json_ok && obs_ok then 0 else 1

let metrics_lint path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg ->
    Printf.eprintf "metrics-lint: %s\n" msg;
    2
  | text -> (
    match Obs.Openmetrics.lint text with
    | Ok () ->
      Printf.printf "%s: OpenMetrics exposition OK\n" path;
      0
    | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      1)

(* --- cmdliner plumbing ------------------------------------------------- *)

let bug_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BUG_ID")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE.json"
        ~doc:
          "Write a Chrome trace-event JSON of the run (spans for every \
           diagnosis stage plus simulator/decoder counters); view it at \
           ui.perfetto.dev or chrome://tracing.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE.json"
        ~doc:"Write the telemetry metrics registry (counters, gauges, \
              histograms) as JSON.")

let obs_summary_arg =
  Arg.(
    value & flag
    & info [ "obs-summary" ]
        ~doc:"Print the span tree and metric tables at the end.")

let metrics_text_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-text" ] ~docv:"FILE.txt"
        ~doc:
          "Write the telemetry metrics registry as OpenMetrics/Prometheus \
           text exposition (counters as _total, histograms with cumulative \
           le buckets, terminated by # EOF); lint it with `snorlax \
           metrics-lint`.")

let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Attach a stderr sink for the structured event log and forward \
           events at this level or above (debug|info|warn|error). Without \
           this flag events only feed the flight recorders.")

let log_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-json" ] ~docv:"FILE.jsonl"
        ~doc:
          "Write every event at or above the log level as one JSON object \
           per line.")

let obs_term =
  let mk trace_out metrics_out metrics_text obs_summary log_level log_json =
    { trace_out; metrics_out; metrics_text; obs_summary; log_level; log_json }
  in
  Term.(
    const mk $ trace_out_arg $ metrics_out_arg $ metrics_text_arg
    $ obs_summary_arg $ log_level_arg $ log_json_arg)

let decode_jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "decode-jobs" ] ~docv:"N"
        ~doc:
          "Domains used to decode trace snapshots in parallel (default: the \
           runtime's recommended domain count). 1 forces the sequential \
           path; results are identical either way.")

let decode_cache_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "decode-cache" ] ~docv:"N"
        ~doc:
          "Capacity of the decode memo cache shared by all diagnoses \
           (default 256 entries). 0 disables caching.")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the 54-bug corpus")
    Term.(const (fun () -> list_bugs (); 0) $ const ())

let diagnose_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show all patterns")
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Reproduce a corpus bug and run Lazy Diagnosis on it")
    Term.(
      const diagnose_bug $ bug_arg $ verbose $ decode_jobs_arg
      $ decode_cache_arg $ obs_term)

let fleet_cmd =
  let endpoints =
    Arg.(
      value & opt int 8
      & info [ "endpoints" ] ~docv:"N"
          ~doc:"Simulated endpoints per scenario, each with its own seed \
                range.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG_ID" ~doc:"Deploy one corpus scenario.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Deploy every evaluation-set scenario.")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Print a snapshot line after every endpoint finishes: packets \
             shipped, throughput, dedup ratio and the ingest/decode stage \
             p50/p99 so far.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate an in-production deployment: N endpoints run a corpus \
          scenario under the PT driver, ship wire-format failure/success \
          reports to the collector, which dedups them by crash signature \
          and runs the statistical diagnosis per bucket across endpoints")
    Term.(
      const fleet_run $ endpoints $ bug $ all $ watch $ decode_jobs_arg
      $ decode_cache_arg $ obs_term)

let chaos_cmd =
  let seeds =
    Arg.(
      value & opt int 25
      & info [ "seeds" ] ~docv:"N" ~doc:"Trials per (bug, fault class).")
  in
  let endpoints =
    Arg.(
      value & opt int 3
      & info [ "endpoints" ] ~docv:"E"
          ~doc:"Simulated endpoints replaying each bug.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG_ID" ~doc:"Chaos-test one corpus scenario.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Chaos-test every evaluation-set scenario.")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"CLASS"
          ~doc:"Only inject one fault class (e.g. wire-drop).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_chaos.json"
      & info [ "out" ] ~docv:"FILE.json" ~doc:"Where to write the bench JSON.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay corpus bugs through the tracer -> wire -> collector -> \
          diagnosis pipeline under seeded fault injection (ring corruption, \
          packet loss/duplication/reordering/bitflips, out-of-order \
          arrival, endpoint death, clock skew) and check the ingest path's \
          invariants after every trial; exits non-zero on any invariant \
          violation or escaped exception")
    Term.(
      const chaos_run $ seeds $ endpoints $ bug $ all $ fault $ out $ obs_term)

let stream_cmd =
  let endpoints =
    Arg.(
      value & opt int 32
      & info [ "endpoints" ] ~docv:"N" ~doc:"Initial fleet size.")
  in
  let ticks =
    Arg.(
      value & opt int 48
      & info [ "duration-ticks" ] ~docv:"T"
          ~doc:
            "Streaming duration in ticks; the diurnal load curve has a \
             24-tick period.")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"S"
          ~doc:"Collector shards behind the signature-hashing tracker.")
  in
  let shard_domains =
    Arg.(
      value & opt int 1
      & info [ "shard-domains" ] ~docv:"D"
          ~doc:
            "Worker domains for the shard service plane; 1 services \
             inline on the submitting domain.  Results are \
             byte-identical whatever the value.")
  in
  let churn =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:"Enable per-tick endpoint join/leave/crash churn.")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"CLASS"
          ~doc:"Inject one chaos fault class over the whole stream.")
  in
  let shed =
    Arg.(
      value & opt string "drop-oldest"
      & info [ "shed" ] ~docv:"POLICY"
          ~doc:
            "Overload shedding policy when a shard queue is full: \
             drop-oldest or drop-newest.")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Print a snapshot line after every tick: load, live endpoints, \
             offered/shed/drained counts, queue depth and bucket count.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG_ID" ~doc:"Stream one corpus scenario.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Stream every evaluation-set scenario.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Traffic generator seed.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_stream.json"
      & info [ "out" ] ~docv:"FILE.json" ~doc:"Where to write the bench JSON.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Run a continuous streaming fleet: a seeded traffic generator \
          drives endpoints with diurnal/bursty load (optionally with churn \
          and fault injection), a tracker hashes crash signatures across \
          collector shards with bounded ingest queues and drop-oldest/\
          drop-newest shedding, and each bucket's diagnosis updates \
          incrementally as reports arrive; exits non-zero if the \
          incremental diagnosis diverges from a from-scratch batch or the \
          backpressure accounting fails to reconcile")
    Term.(
      const stream_run $ endpoints $ ticks $ shards $ shard_domains $ churn
      $ fault $ shed $ watch $ bug $ all $ seed $ out $ decode_jobs_arg
      $ decode_cache_arg $ obs_term)

let dump_cmd =
  Cmd.v (Cmd.info "dump" ~doc:"Print a corpus program's LIR")
    Term.(const dump_bug $ bug_arg)

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Reproduce and diagnose the whole 54-bug corpus, checking every \
          diagnosis against its ground truth")
    Term.(const validate $ const ())

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Diagnose a corpus bug, record the order of its racing accesses \
          in the failing run, and replay that coarse schedule (section \
          3.3's record/replay implication)")
    Term.(const replay_bug $ bug_arg)

let bench_compare_cmd =
  let old_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json")
  in
  let max_regress =
    Arg.(
      value & opt float 10.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Allowed relative increase for lower-is-better metrics \
             (durations, byte counts, miss/error counters) before the \
             comparison fails.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Show every metric, not just regressions.")
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Diff two BENCH_*.json artifacts and exit non-zero when a \
          lower-is-better metric regressed beyond the tolerance; other \
          metrics are informational")
    Term.(const bench_compare $ old_arg $ new_arg $ max_regress $ verbose)

let oracle_cmd =
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG_ID" ~doc:"Cross-check one corpus bug.")
  in
  let all =
    Arg.(
      value & flag & info [ "all" ] ~doc:"Cross-check the full 54-bug corpus.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_oracle.json"
      & info [ "out" ] ~docv:"FILE.json"
          ~doc:"Where to write the differential-check artifact.")
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:
         "Differential cross-check: replay each bug's failing interleaving \
          under a vector-clock happens-before oracle and verify every pair \
          the diagnosis pipeline blames (agree / diagnosis-miss / \
          diagnosis-spurious / oracle-only); exits non-zero on any \
          divergence")
    Term.(
      const oracle_run $ bug $ all $ out $ decode_jobs_arg $ decode_cache_arg
      $ obs_term)

let fix_cmd =
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"BUG_ID" ~doc:"Fix one corpus bug.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Fix the full 54-bug corpus.")
  in
  let seeds =
    Arg.(
      value
      & opt int Fix.Validate.default_sweep_seeds
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Fresh seeds swept under the happens-before oracle per patch.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Pool lanes fixing bugs in parallel (default: the runtime's \
             recommended domain count); the verdict table is identical at \
             any width.")
  in
  let min_fix_rate =
    Arg.(
      value
      & opt float 0.0
      & info [ "min-fix-rate" ] ~docv:"RATE"
          ~doc:
            "Exit non-zero when the corpus-wide fix rate falls below this \
             floor (0.0 - 1.0).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_fix.json"
      & info [ "out" ] ~docv:"FILE.json"
          ~doc:"Where to write the fix-validation artifact.")
  in
  Cmd.v
    (Cmd.info "fix"
       ~doc:
         "Close the loop: synthesize a candidate patch from each bug's \
          diagnosis (lock insertion, signal/wait ordering, lock-order \
          gating), then validate it by replaying the original failing seed \
          and sweeping fresh seeds under the happens-before oracle; reports \
          a fixed / not-fixed / regressed verdict per bug")
    Term.(
      const fix_run $ bug $ all $ seeds $ jobs $ min_fix_rate $ out
      $ decode_jobs_arg $ decode_cache_arg $ obs_term)

let metrics_lint_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.txt")
  in
  Cmd.v
    (Cmd.info "metrics-lint"
       ~doc:
         "Check a file written by --metrics-text against the OpenMetrics \
          text-exposition rules (counter _total naming, cumulative \
          monotone le buckets, +Inf/_count agreement, # EOF terminator); \
          exits non-zero on the first violation")
    Term.(const metrics_lint $ file_arg)

let experiment_cmd =
  let exp_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let samples =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ] ~doc:"Failing runs per bug for the hypothesis study")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:
         "Reproduce a table/figure: hypothesis (Tables 1-3), accuracy, \
          stages (Fig 7), analysis-time (Table 4), overhead (Fig 8), \
          scalability (Fig 9), latency, ablations, or all")
    Term.(const experiment $ exp_name $ samples)

let main_cmd =
  Cmd.group
    (Cmd.info "snorlax" ~version:"1.0"
       ~doc:
         "Lazy Diagnosis of in-production concurrency bugs (SOSP'17 \
          reproduction)")
    [
      list_cmd; diagnose_cmd; fleet_cmd; stream_cmd; chaos_cmd; oracle_cmd;
      fix_cmd; dump_cmd; replay_cmd; validate_cmd; experiment_cmd;
      bench_compare_cmd; metrics_lint_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
