#!/bin/sh
# The local CI gate: build everything, run the full test suite, and check
# formatting when ocamlformat is available.  Fails fast on the first error.
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build @all

echo "== test =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== fmt =="
  dune build @fmt
else
  echo "== fmt == (skipped: ocamlformat not installed)"
fi


echo "== fleet smoke =="
fleet_out=$(dune exec bin/snorlax.exe -- fleet --endpoints 4 --bug pbzip2-1 \
  --metrics-text /tmp/snorlax_metrics.txt)
echo "$fleet_out"
# The exit status already guards "every bucket diagnosed"; also assert the
# output names a concrete root-cause pattern.
echo "$fleet_out" | grep -Eq "violation|deadlock" || {
  echo "fleet smoke: no diagnosis output"
  exit 1
}

echo "== openmetrics lint =="
# The exposition the fleet run just wrote must satisfy the format linter
# (counter _total naming, cumulative monotone le buckets, # EOF), and a
# doctored copy must fail — both exit paths get exercised.
dune exec bin/snorlax.exe -- metrics-lint /tmp/snorlax_metrics.txt
head -n -1 /tmp/snorlax_metrics.txt > /tmp/snorlax_metrics_bad.txt  # drop # EOF
if dune exec bin/snorlax.exe -- metrics-lint /tmp/snorlax_metrics_bad.txt \
    >/dev/null 2>&1; then
  echo "metrics-lint smoke: truncated exposition should fail"
  exit 1
fi
rm -f /tmp/snorlax_metrics.txt /tmp/snorlax_metrics_bad.txt

echo "== decode bench + compare smoke =="
# Produce the decode-throughput artifact, then run it through
# bench-compare against itself: the self-diff must report zero
# regressions, and a doctored copy must fail — both exit paths of the
# regression gate get exercised on every check run.
dune exec bench/main.exe -- --decode-only
dune exec bin/snorlax.exe -- bench-compare BENCH_decode.json BENCH_decode.json
sed 's/"seq_cold_ns":[0-9.e+-]*/"seq_cold_ns":9e12/' BENCH_decode.json \
  > /tmp/snorlax_bench_regressed.json
if dune exec bin/snorlax.exe -- bench-compare BENCH_decode.json \
    /tmp/snorlax_bench_regressed.json >/dev/null 2>&1; then
  echo "bench-compare smoke: doctored regression should fail"
  exit 1
fi
rm -f /tmp/snorlax_bench_regressed.json

echo "== decode bench gate =="
# Gate the fresh artifact against the newest archived snapshot (same
# generous wall-clock threshold as the fleet gate), and hold the decode
# overhaul to its headline number: the batched pool + cursor walker must
# beat the v1 sequential pipeline at least 2x on a cold corpus.
baseline=$(ls -t bench_history/*/BENCH_decode.json 2>/dev/null | head -1 || true)
if [ -n "$baseline" ]; then
  dune exec bin/snorlax.exe -- bench-compare --max-regress 200 \
    "$baseline" BENCH_decode.json
else
  echo "decode bench gate: no archived baseline yet (skipped)"
fi
awk 'BEGIN { RS="," } /"parallel_speedup"/ {
       split($0, kv, ":"); s = kv[2] + 0
       if (s >= 2.0) { print "decode bench gate: parallel_speedup " s " >= 2.0"; ok = 1 }
       else { print "decode bench gate: parallel_speedup " s " < 2.0"; exit 1 }
     }
     END { if (!ok) { print "decode bench gate: parallel_speedup missing"; exit 1 } }' \
  BENCH_decode.json

echo "== stream smoke =="
# Continuous streaming path, serviced by the shard-per-domain plane: the
# exit status gates "incremental diagnosis equals a from-scratch batch
# on every bucket", "backpressure accounting reconciles (offered = shed
# + drained + leftover, per shard)" and "the final drain left nothing
# queued" — all with the SPSC handoff in the loop.  Writes to /tmp: the
# canonical BENCH_stream.json comes from the bench gate below.
dune exec bin/snorlax.exe -- stream --bug pbzip2-1 --endpoints 6 \
  --duration-ticks 8 --shards 2 --churn --shard-domains 4 \
  --out /tmp/snorlax_stream_smoke.json
rm -f /tmp/snorlax_stream_smoke.json

echo "== stream bench gate =="
# Emit the streaming artifact: the same seeded scenario run inline
# (1 domain) and with one worker domain per shard (4), sharing one
# baseline reproduction.  The bench itself asserts the two bucket
# tables compare equal and that incremental == batch with accounting
# reconciled in both modes; the awk gate holds the service plane to its
# headline >= 2x speedup on hosts with enough cores (the bench marks
# the gate skipped_few_cores below 4 — extra domains cannot beat
# physics on one core, and the ratio is still recorded).
dune exec bench/main.exe -- --stream-only
awk 'BEGIN { RS="," } /"parallel_gate"/ {
       if ($0 ~ /skipped_few_cores/) { print "stream bench gate: skipped (too few cores for the 2x assert)"; ok = 1 }
     }
     /"stream_parallel_speedup"/ { split($0, kv, ":"); s = kv[2] + 0; seen = 1 }
     END {
       if (!seen) { print "stream bench gate: stream_parallel_speedup missing"; exit 1 }
       if (ok) exit 0
       if (s >= 2.0) { print "stream bench gate: stream_parallel_speedup " s " >= 2.0" }
       else { print "stream bench gate: stream_parallel_speedup " s " < 2.0"; exit 1 }
     }' \
  BENCH_stream.json

echo "== fleet bench gate =="
# Re-emit the batch-fleet benchmark and gate it against the newest
# archived snapshot.  The threshold is generous: these are wall-clock
# numbers from a shared CI box, so only order-of-magnitude regressions
# (e.g. an accidentally quadratic ingest path) should trip it.
dune exec bench/main.exe -- --fleet-only
baseline=$(ls -t bench_history/*/BENCH_fleet.json 2>/dev/null | head -1 || true)
if [ -n "$baseline" ]; then
  dune exec bin/snorlax.exe -- bench-compare --max-regress 200 \
    "$baseline" BENCH_fleet.json
else
  echo "fleet bench gate: no archived baseline yet (skipped)"
fi

echo "== oracle gate =="
# Differential cross-check of the whole corpus against the
# happens-before oracle: nonzero exit on any diagnosis-miss,
# diagnosis-spurious or oracle-only divergence.
dune exec bin/snorlax.exe -- oracle --all --out BENCH_oracle.json

echo "== chaos gate =="
# Exit status is the gate: any invariant violation, uncaught exception or
# nondeterministic replay in the fault-injection sweep fails the build.
dune exec bin/snorlax.exe -- chaos --seeds 25 --all --out BENCH_chaos.json

echo "== fix gate =="
# Close the loop over the whole corpus: synthesize a patch from each
# diagnosis and validate it (failing-seed replay + HB-oracle sweep).
# The exit status gates the fix rate: at least 60% of the corpus must
# earn an evidence-backed "fixed" verdict.  Writes BENCH_fix.json for
# the archive step below.
dune exec bin/snorlax.exe -- fix --all --seeds 10 --min-fix-rate 0.6 \
  --out BENCH_fix.json

echo "== bench archive =="
# Snapshot this run's BENCH_*.json artifacts under bench_history/<rev>/
# so the perf trajectory accumulates across commits (bench-compare any
# two snapshots to see where a regression landed).
rev=$(git rev-parse --short HEAD 2>/dev/null || echo workdir)
mkdir -p "bench_history/$rev"
cp BENCH_*.json "bench_history/$rev/" 2>/dev/null || true
ls "bench_history/$rev"

echo "check.sh: all green"
