#!/bin/sh
# The local CI gate: build everything, run the full test suite, and check
# formatting when ocamlformat is available.  Fails fast on the first error.
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build @all

echo "== test =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== fmt =="
  dune build @fmt
else
  echo "== fmt == (skipped: ocamlformat not installed)"
fi

echo "check.sh: all green"
